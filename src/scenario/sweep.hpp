// SweepEngine: expand grid/list sweeps over any scenario parameter
// into a batch of cells and execute it, optionally fanning cells
// across the shared thread pool.
//
// Determinism contract: with the default seed mode every cell inherits
// the base seed, and because every driver is bit-identical for any
// thread count, a sweep cell reproduces a direct `run` of the same
// parameters exactly — the fig9 / table1 numbers fall out of a sweep
// bit-identically.  With vary_seed the engine derives a stable
// per-cell seed from (base seed, cell index) via StreamSeeder, so a
// sweep gets decorrelated randomness while any single cell stays
// replayable from its index alone.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/scenario/registry.hpp"
#include "src/scenario/result.hpp"
#include "src/scenario/spec.hpp"
#include "src/support/json.hpp"

namespace leak::scenario {

/// One swept parameter and its value list (already validated against
/// the spec; values are stored as typed ParamValues).
struct SweepAxis {
  std::string param;
  std::vector<ParamValue> values;
};

/// Parse one "--sweep key=SPEC" axis against a scenario spec.  SPEC is
/// either a comma list ("0.3,0.33,1/3" — no expression support, plain
/// values) or an inclusive numeric grid "lo:hi:step" (int or double
/// parameters).  Returns the error message on failure.
[[nodiscard]] std::optional<std::string> parse_sweep_axis(
    const ScenarioSpec& spec, std::string_view text, SweepAxis* out);

struct SweepConfig {
  /// Derive a per-cell seed from (base seed, cell index) instead of
  /// running every cell with the base seed.
  bool vary_seed = false;
  /// Fan cells across the thread pool (each cell forced to
  /// threads = 1) instead of running cells sequentially with the
  /// scenario's own inner parallelism.  Either way the numbers are
  /// bit-identical; this only moves where the parallelism sits.
  bool parallel_cells = false;
  /// Worker threads for parallel_cells (0 = auto).
  unsigned threads = 0;
};

struct SweepCell {
  ParamSet params;
  ScenarioResult result;
};

struct SweepResult {
  std::string scenario;
  std::vector<SweepAxis> axes;
  /// Row-major over the axes: the LAST axis varies fastest.
  std::vector<SweepCell> cells;

  /// Machine-readable report of the whole batch.
  [[nodiscard]] json::Value to_json() const;
  /// One CSV row per cell: swept parameter values then every metric of
  /// the first cell's metric set.
  [[nodiscard]] std::string to_csv() const;
  /// Human-readable summary table (same columns as the CSV).
  [[nodiscard]] std::string to_text() const;
};

/// Number of cells in the cartesian product (0 when any axis is empty).
[[nodiscard]] std::size_t sweep_cell_count(const std::vector<SweepAxis>& axes);

/// Expand the cartesian product into full parameter sets, base first.
[[nodiscard]] std::vector<ParamSet> expand_sweep(
    const ParamSet& base, const std::vector<SweepAxis>& axes);

/// The canonical cell identity: the full parameter set of cell `index`
/// in the row-major expansion (last axis fastest), including the
/// vary_seed per-cell seed derivation (StreamSeeder over (base seed,
/// index), skipped when an axis sweeps `seed` itself).  run_sweep and
/// the serve job ledger both derive cells through this one function,
/// so a cell re-run by a resumed job is bit-identical to the same cell
/// of an uninterrupted sweep.  `index` must be < sweep_cell_count.
[[nodiscard]] ParamSet sweep_cell_params(const ParamSet& base,
                                         const std::vector<SweepAxis>& axes,
                                         std::size_t index, bool vary_seed);

/// Serialize axes with typed values ([{"param": "beta0",
/// "values": [0.3, 0.33]}, ...]) — the job-manifest wire form.
[[nodiscard]] json::Value axes_to_json(const std::vector<SweepAxis>& axes);

/// Inverse of axes_to_json, validated against `spec`: every axis must
/// name a declared parameter (unknown names are rejected here, not at
/// cell-run time) and every value must pass the spec's range/choice
/// constraints.  Returns nullopt and sets `error` on failure.
[[nodiscard]] std::optional<std::vector<SweepAxis>> axes_from_json(
    const ScenarioSpec& spec, const json::Value& doc,
    std::string* error = nullptr);

/// Run the batch.  Throws std::invalid_argument on an invalid base or
/// axis (validated against scenario.spec() up front).
[[nodiscard]] SweepResult run_sweep(const Scenario& scenario,
                                    const ParamSet& base,
                                    std::vector<SweepAxis> axes,
                                    const SweepConfig& config = {});

}  // namespace leak::scenario
