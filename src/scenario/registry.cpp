#include "src/scenario/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/runner/thread_pool.hpp"
#include "src/support/version.hpp"

namespace leak::scenario {

Scenario::Scenario(ScenarioSpec spec, RunFn run)
    : spec_(std::move(spec)), run_(std::move(run)) {
  if (!run_) {
    throw std::invalid_argument("Scenario \"" + spec_.name() +
                                "\": null run function");
  }
}

ScenarioResult Scenario::run(const ParamSet& params) const {
  if (auto err = spec_.validate(params)) {
    throw std::invalid_argument("scenario \"" + spec_.name() + "\": " + *err);
  }
  ScenarioResult result;
  result.scenario = spec_.name();
  result.params = params;
  result.seed = static_cast<std::uint64_t>(params.get_int("seed"));
  result.threads = runner::resolve_threads(
      static_cast<unsigned>(params.get_int("threads")));
  result.git_describe = git_describe();
  const double start_ms = monotonic_ms();
  run_(params, &result);
  result.wall_ms = monotonic_ms() - start_ms;
  return result;
}

void ScenarioRegistry::add(ScenarioSpec spec, RunFn run) {
  if (find(spec.name()) != nullptr) {
    throw std::invalid_argument("ScenarioRegistry: duplicate scenario \"" +
                                spec.name() + "\"");
  }
  for (const char* required : {"paths", "seed", "threads", "block"}) {
    const ParamSpec* p = spec.find(required);
    if (p == nullptr || p->type != ParamType::kInt) {
      throw std::invalid_argument(
          "ScenarioRegistry: scenario \"" + spec.name() +
          "\" must declare the int parameter \"" + required +
          "\" (uniform tooling contract)");
    }
  }
  scenarios_.push_back(
      std::make_unique<Scenario>(std::move(spec), std::move(run)));
}

const Scenario* ScenarioRegistry::find(std::string_view name) const {
  for (const auto& s : scenarios_) {
    if (s->spec().name() == name) return s.get();
  }
  return nullptr;
}

std::vector<const Scenario*> ScenarioRegistry::all() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const auto& s : scenarios_) out.push_back(s.get());
  std::sort(out.begin(), out.end(), [](const Scenario* a, const Scenario* b) {
    return a->spec().name() < b->spec().name();
  });
  return out;
}

ScenarioRegistry& builtin_registry() {
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    register_builtin_scenarios(*r);
    return r;
  }();
  return *registry;
}

}  // namespace leak::scenario
