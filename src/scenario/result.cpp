#include "src/scenario/result.hpp"

#include <sstream>
#include <stdexcept>

namespace leak::scenario {

void ScenarioResult::add_stats(std::string name, const RunningStats& s) {
  MetricStats m;
  m.count = s.count();
  m.mean = s.mean();
  m.stddev = s.stddev();
  m.min = s.count() ? s.min() : 0.0;
  m.max = s.count() ? s.max() : 0.0;
  stats.emplace_back(std::move(name), m);
}

double ScenarioResult::metric(std::string_view name) const {
  for (const auto& [n, v] : metrics) {
    if (n == name) return v;
  }
  throw std::out_of_range("ScenarioResult: no metric \"" + std::string(name) +
                          "\"");
}

bool ScenarioResult::has_metric(std::string_view name) const {
  for (const auto& [n, v] : metrics) {
    if (n == name) return true;
  }
  return false;
}

json::Value ScenarioResult::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("scenario", scenario);
  doc.set("params", params.to_json());
  json::Value mj = json::Value::object();
  for (const auto& [n, v] : metrics) mj.set(n, v);
  doc.set("metrics", std::move(mj));
  if (!stats.empty()) {
    json::Value sj = json::Value::object();
    for (const auto& [n, s] : stats) {
      json::Value one = json::Value::object();
      one.set("count", static_cast<std::int64_t>(s.count));
      one.set("mean", s.mean);
      one.set("stddev", s.stddev);
      one.set("min", s.min);
      one.set("max", s.max);
      sj.set(n, std::move(one));
    }
    doc.set("stats", std::move(sj));
  }
  if (trials.has_value()) {
    json::Value tj = json::Value::object();
    json::Value cols = json::Value::array();
    for (const auto& h : trials->headers()) cols.push_back(h);
    tj.set("columns", std::move(cols));
    json::Value rows = json::Value::array();
    for (std::size_t r = 0; r < trials->rows(); ++r) {
      json::Value row = json::Value::array();
      for (const auto& cell : trials->row(r)) row.push_back(cell);
      rows.push_back(std::move(row));
    }
    tj.set("rows", std::move(rows));
    doc.set("trials", std::move(tj));
  }
  json::Value meta = json::Value::object();
  meta.set("seed", static_cast<std::uint64_t>(seed));
  meta.set("threads", static_cast<std::int64_t>(threads));
  meta.set("git_describe", git_describe);
  meta.set("wall_ms", wall_ms);
  doc.set("meta", std::move(meta));
  return doc;
}

std::string ScenarioResult::trials_to_csv() const {
  return trials.has_value() ? trials->to_csv() : std::string{};
}

std::string ScenarioResult::to_text(std::size_t max_trial_rows) const {
  std::ostringstream os;
  os << "scenario: " << scenario << "\n";
  os << "seed=" << seed << " threads=" << threads << " wall_ms="
     << Table::fmt(wall_ms, 1) << " git=" << git_describe << "\n";
  {
    Table p({"parameter", "value"});
    for (const auto& [n, v] : params.items()) {
      p.add_row({n, ParamSet::value_to_string(v)});
    }
    os << "\nparameters:\n" << p.to_string();
  }
  if (!metrics.empty()) {
    Table m({"metric", "value"});
    for (const auto& [n, v] : metrics) m.add_row({n, Table::fmt_exact(v)});
    os << "\nmetrics:\n" << m.to_string();
  }
  if (!stats.empty()) {
    Table s({"sample", "count", "mean", "stddev", "min", "max"});
    for (const auto& [n, st] : stats) {
      s.add_row({n, std::to_string(st.count), Table::fmt(st.mean, 4),
                 Table::fmt(st.stddev, 4), Table::fmt(st.min, 4),
                 Table::fmt(st.max, 4)});
    }
    os << "\nper-trial stats:\n" << s.to_string();
  }
  if (trials.has_value() && trials->rows() > 0) {
    os << "\ntrial rows";
    if (trials->rows() > max_trial_rows) {
      Table head(trials->headers());
      for (std::size_t r = 0; r < max_trial_rows; ++r) {
        head.add_row(trials->row(r));
      }
      os << " (first " << max_trial_rows << " of " << trials->rows()
         << "; use --csv for all):\n"
         << head.to_string();
    } else {
      os << ":\n" << trials->to_string();
    }
  }
  return os.str();
}

}  // namespace leak::scenario
