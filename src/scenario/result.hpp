// Uniform output of every registry scenario: named scalar metrics,
// summary statistics over per-trial samples, an optional per-trial
// table, and reproduction metadata (seed, threads, git describe, wall
// time).  One JSON shape for every experiment, so sweep artifacts and
// CI smoke runs are machine-comparable across scenarios.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/scenario/spec.hpp"
#include "src/support/json.hpp"
#include "src/support/stats.hpp"
#include "src/support/table.hpp"

namespace leak::scenario {

/// Frozen summary of a per-trial sample (from RunningStats).
struct MetricStats {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct ScenarioResult {
  std::string scenario;
  ParamSet params;

  /// Named scalar outcomes, in emission order.
  std::vector<std::pair<std::string, double>> metrics;
  /// Named distributions summarized over trials.
  std::vector<std::pair<std::string, MetricStats>> stats;
  /// Optional per-trial (or per-grid-point) rows.
  std::optional<Table> trials;

  // Reproduction metadata, stamped by Scenario::run.
  std::uint64_t seed = 0;
  unsigned threads = 0;
  std::string git_describe;
  double wall_ms = 0.0;

  void add_metric(std::string name, double value) {
    metrics.emplace_back(std::move(name), value);
  }
  void add_stats(std::string name, const RunningStats& s);

  /// Lookup a scalar metric; throws std::out_of_range when absent.
  [[nodiscard]] double metric(std::string_view name) const;
  [[nodiscard]] bool has_metric(std::string_view name) const;

  /// Full machine-readable report.
  [[nodiscard]] json::Value to_json() const;
  /// Per-trial rows as CSV ("" when the scenario emitted none).
  [[nodiscard]] std::string trials_to_csv() const;
  /// Human-readable report (metadata, metrics, stats, trial rows).
  [[nodiscard]] std::string to_text(std::size_t max_trial_rows = 24) const;
};

}  // namespace leak::scenario
