#include "src/finality/ffg.hpp"

namespace leak::finality {

FfgTracker::FfgTracker(const chain::ValidatorRegistry& registry,
                       Checkpoint genesis)
    : registry_(registry), justified_(genesis), finalized_(genesis) {
  justified_set_.insert(genesis);
  finalized_chain_.push_back(genesis);
}

void FfgTracker::on_checkpoint_vote(const Attestation& att) {
  const VoteKey key{att.attester, att.target.epoch};
  if (seen_.contains(key)) return;
  seen_.insert(key);
  votes_by_target_[att.target].push_back(
      PendingVote{att.attester, att.source});
}

Gwei FfgTracker::support(const Checkpoint& target) const {
  const auto it = votes_by_target_.find(target);
  if (it == votes_by_target_.end()) return Gwei{};
  Gwei total{};
  for (const PendingVote& v : it->second) {
    if (!justified_set_.contains(v.source)) continue;
    if (!registry_.is_active(v.attester, target.epoch)) continue;
    total += registry_.at(v.attester).balance;
  }
  return total;
}

std::optional<Checkpoint> FfgTracker::process_epoch(Epoch e) {
  // Gather candidate targets in epoch e; check each for a supermajority
  // link from an already-justified source.
  std::optional<Checkpoint> newly_justified;
  const Gwei total = registry_.total_active_balance(e);
  for (const auto& [target, votes] : votes_by_target_) {
    if (target.epoch != e) continue;
    const Gwei got = support(target);
    // Strictly more than 2/3 of the stake (supermajority).  Computed in
    // 128-bit to avoid overflow: 3*got > 2*total.
    const bool supermajority =
        3 * static_cast<__uint128_t>(got.value()) >
        2 * static_cast<__uint128_t>(total.value());
    if (!supermajority) continue;
    if (!justified_set_.contains(target)) {
      justified_set_.insert(target);
      if (target.epoch > justified_.epoch) justified_ = target;
      newly_justified = target;
      // Finalization: two consecutive justified checkpoints where the
      // earlier one is the source of the later one's supermajority link.
      for (const PendingVote& v : votes) {
        if (v.source.epoch.next() == target.epoch &&
            justified_set_.contains(v.source)) {
          if (v.source.epoch > finalized_.epoch) {
            finalized_ = v.source;
            finalized_chain_.push_back(v.source);
          }
          break;
        }
      }
    }
  }
  return newly_justified;
}

}  // namespace leak::finality
