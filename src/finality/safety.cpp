#include "src/finality/safety.hpp"

namespace leak::finality {

SafetyMonitor::SafetyMonitor(const chain::BlockTree& tree) : tree_(tree) {}

std::optional<SafetyViolation> SafetyMonitor::report(const Checkpoint& c) {
  for (const Checkpoint& prev : reported_) {
    if (prev.block == c.block) continue;
    const bool compatible = tree_.is_ancestor(prev.block, c.block) ||
                            tree_.is_ancestor(c.block, prev.block);
    if (!compatible) {
      SafetyViolation v{prev, c};
      if (!violation_) violation_ = v;
      reported_.push_back(c);
      return v;
    }
  }
  reported_.push_back(c);
  return std::nullopt;
}

}  // namespace leak::finality
