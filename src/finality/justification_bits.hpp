// Spec-faithful Gasper epoch accounting: the 4-bit justification
// bitfield and the four finalization rules of
// `process_justification_and_finalization` (Combining GHOST and Casper,
// and the consensus specs).  The paper works with the simplified
// "two consecutive justified checkpoints" rule; this module implements
// the full rule so the simplification can be validated against it:
//
// with bits b[0] = current epoch justified, b[1] = previous, ...:
//   1. b[1..3] all set and old_previous + 3 == current  -> finalize old_previous
//   2. b[1..2] all set and old_previous + 2 == current  -> finalize old_previous
//   3. b[0..2] all set and old_current  + 2 == current  -> finalize old_current
//   4. b[0..1] all set and old_current  + 1 == current  -> finalize old_current
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "src/chain/block.hpp"

namespace leak::finality {

/// The sliding 4-epoch justification window.
class JustificationBits {
 public:
  /// Bit i says: the checkpoint of (current_epoch - i) is justified.
  [[nodiscard]] bool test(std::size_t i) const { return bits_.at(i); }

  /// Shift the window one epoch (new current epoch enters unjustified).
  void shift();

  /// Mark the checkpoint `i` epochs back as justified.
  void set(std::size_t i);

  [[nodiscard]] std::array<bool, 4> raw() const { return bits_; }

 private:
  std::array<bool, 4> bits_{};
};

/// Epoch-granular justification/finalization state machine driven by
/// supermajority flags, mirroring the spec's epoch processing.  The
/// caller reports, once per epoch, whether the previous and current
/// epoch targets gathered a supermajority link from the state's
/// justified checkpoint(s).
class GasperFinalizer {
 public:
  explicit GasperFinalizer(chain::Checkpoint genesis);

  struct EpochInput {
    Epoch current{};
    /// Supermajority for the previous epoch's target (and that target).
    bool previous_justified_now = false;
    chain::Checkpoint previous_target{};
    /// Supermajority for the current epoch's target.
    bool current_justified_now = false;
    chain::Checkpoint current_target{};
  };

  struct EpochOutcome {
    std::optional<chain::Checkpoint> newly_justified;
    std::optional<chain::Checkpoint> newly_finalized;
    /// Which of the four spec rules fired (1-4), 0 when none.
    int finalization_rule = 0;
  };

  /// Process one epoch transition.  `current` must advance by exactly
  /// one epoch per call.
  EpochOutcome process(const EpochInput& in);

  [[nodiscard]] const chain::Checkpoint& justified() const {
    return current_justified_;
  }
  [[nodiscard]] const chain::Checkpoint& previous_justified() const {
    return previous_justified_;
  }
  [[nodiscard]] const chain::Checkpoint& finalized() const {
    return finalized_;
  }
  [[nodiscard]] const JustificationBits& bits() const { return bits_; }

 private:
  JustificationBits bits_;
  chain::Checkpoint previous_justified_;
  chain::Checkpoint current_justified_;
  chain::Checkpoint finalized_;
  Epoch last_processed_{0};
};

}  // namespace leak::finality
