#include "src/finality/justification_bits.hpp"

#include <stdexcept>

namespace leak::finality {

void JustificationBits::shift() {
  for (std::size_t i = bits_.size() - 1; i > 0; --i) {
    bits_[i] = bits_[i - 1];
  }
  bits_[0] = false;
}

void JustificationBits::set(std::size_t i) { bits_.at(i) = true; }

GasperFinalizer::GasperFinalizer(chain::Checkpoint genesis)
    : previous_justified_(genesis),
      current_justified_(genesis),
      finalized_(genesis) {
  bits_.set(0);
}

GasperFinalizer::EpochOutcome GasperFinalizer::process(
    const EpochInput& in) {
  if (in.current.value() != last_processed_.value() + 1 &&
      !(last_processed_.value() == 0 && in.current.value() == 1)) {
    throw std::invalid_argument(
        "GasperFinalizer::process: epochs must advance by one");
  }
  last_processed_ = in.current;

  EpochOutcome out;
  // Spec: snapshot, then rotate.
  const chain::Checkpoint old_previous = previous_justified_;
  const chain::Checkpoint old_current = current_justified_;
  previous_justified_ = current_justified_;
  bits_.shift();

  if (in.previous_justified_now) {
    if (in.previous_target.epoch.next() != in.current) {
      throw std::invalid_argument("previous_target must be current - 1");
    }
    if (in.previous_target.epoch > current_justified_.epoch) {
      current_justified_ = in.previous_target;
      out.newly_justified = in.previous_target;
    }
    bits_.set(1);
  }
  if (in.current_justified_now) {
    if (in.current_target.epoch != in.current) {
      throw std::invalid_argument("current_target must be current epoch");
    }
    current_justified_ = in.current_target;
    out.newly_justified = in.current_target;
    bits_.set(0);
  }

  // The four finalization rules.
  const auto e = in.current.value();
  const auto b = bits_.raw();
  if (b[1] && b[2] && b[3] && old_previous.epoch.value() + 3 == e) {
    finalized_ = old_previous;
    out.finalization_rule = 1;
  } else if (b[1] && b[2] && old_previous.epoch.value() + 2 == e) {
    finalized_ = old_previous;
    out.finalization_rule = 2;
  }
  if (b[0] && b[1] && b[2] && old_current.epoch.value() + 2 == e) {
    finalized_ = old_current;
    out.finalization_rule = 3;
  } else if (b[0] && b[1] && old_current.epoch.value() + 1 == e) {
    finalized_ = old_current;
    out.finalization_rule = 4;
  }
  if (out.finalization_rule != 0) out.newly_finalized = finalized_;
  return out;
}

}  // namespace leak::finality
