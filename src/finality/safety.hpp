// Safety monitor: detects conflicting finalization across validator (or
// branch) views — the paper's Safety-loss outcome (1).
#pragma once

#include <optional>
#include <vector>

#include "src/chain/blocktree.hpp"
#include "src/finality/ffg.hpp"

namespace leak::finality {

/// A detected safety violation: two finalized checkpoints on divergent
/// branches (neither block is an ancestor of the other).
struct SafetyViolation {
  Checkpoint a{};
  Checkpoint b{};
};

/// Collects finalized checkpoints reported by any view and checks the
/// prefix property (Property 4 of the paper) against the block tree.
class SafetyMonitor {
 public:
  explicit SafetyMonitor(const chain::BlockTree& tree);

  /// Report a finalized checkpoint; returns a violation if this
  /// checkpoint conflicts with any previously reported one.
  std::optional<SafetyViolation> report(const Checkpoint& c);

  [[nodiscard]] bool violated() const { return violation_.has_value(); }
  [[nodiscard]] const std::optional<SafetyViolation>& violation() const {
    return violation_;
  }
  [[nodiscard]] const std::vector<Checkpoint>& reported() const {
    return reported_;
  }

 private:
  const chain::BlockTree& tree_;
  std::vector<Checkpoint> reported_;
  std::optional<SafetyViolation> violation_;
};

}  // namespace leak::finality
