// Casper-FFG vote accounting: supermajority links, justification and
// finalization (Section 3.2 of the paper).
//
// A checkpoint (b, e) becomes *justified* when attestations carrying a
// checkpoint vote (source = some already-justified checkpoint, target =
// (b, e)) are cast by validators holding more than 2/3 of the active
// stake.  It becomes *finalized* when it is justified and the checkpoint
// of the immediately following epoch is also justified with this
// checkpoint as source ("two consecutive justified checkpoints").
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/chain/block.hpp"
#include "src/chain/registry.hpp"

namespace leak::finality {

using chain::Attestation;
using chain::Checkpoint;
using chain::CheckpointHash;
using chain::Digest;

/// Tracks FFG votes and derives the justified / finalized checkpoints of
/// one validator's view (or of one branch, in branch-level simulations).
class FfgTracker {
 public:
  /// `genesis` is both justified and finalized at epoch 0.
  FfgTracker(const chain::ValidatorRegistry& registry, Checkpoint genesis);

  /// Process one checkpoint vote.  Duplicate (attester, target) pairs are
  /// counted once; conflicting same-epoch votes from one attester count
  /// only the first time (the equivocation is the slasher's business).
  void on_checkpoint_vote(const Attestation& att);

  /// Run justification/finalization for the given epoch: checks whether
  /// any target checkpoint of epoch `e` gathered a supermajority link
  /// from a justified source.  Call once per epoch after ingesting votes.
  /// Returns the newly justified checkpoint, if any.
  std::optional<Checkpoint> process_epoch(Epoch e);

  [[nodiscard]] const Checkpoint& justified() const { return justified_; }
  [[nodiscard]] const Checkpoint& finalized() const { return finalized_; }
  [[nodiscard]] const std::vector<Checkpoint>& finalized_chain() const {
    return finalized_chain_;
  }
  [[nodiscard]] bool is_justified(const Checkpoint& c) const {
    return justified_set_.contains(c);
  }

  /// Stake that voted (source -> target) with a justified source, for a
  /// target in epoch e.  Exposed for tests and metrics.
  [[nodiscard]] Gwei support(const Checkpoint& target) const;

 private:
  struct VoteKey {
    ValidatorIndex attester{};
    Epoch target_epoch{};
    friend bool operator==(const VoteKey&, const VoteKey&) = default;
  };
  struct VoteKeyHash {
    std::size_t operator()(const VoteKey& k) const noexcept {
      return std::hash<std::uint32_t>{}(k.attester.value()) ^
             (std::hash<std::uint64_t>{}(k.target_epoch.value()) << 1);
    }
  };

  const chain::ValidatorRegistry& registry_;
  Checkpoint justified_;
  Checkpoint finalized_;
  std::vector<Checkpoint> finalized_chain_;
  std::unordered_set<Checkpoint, CheckpointHash> justified_set_;
  /// target -> accumulated votes (attester, source) pairs.
  struct PendingVote {
    ValidatorIndex attester{};
    Checkpoint source{};
  };
  std::unordered_map<Checkpoint, std::vector<PendingVote>, CheckpointHash>
      votes_by_target_;
  /// (attester, target epoch) pairs already counted.
  std::unordered_set<VoteKey, VoteKeyHash> seen_;
};

}  // namespace leak::finality
