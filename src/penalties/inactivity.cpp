#include "src/penalties/inactivity.hpp"

#include <stdexcept>

namespace leak::penalties {

InactivityTracker::InactivityTracker(chain::ValidatorRegistry& registry,
                                     SpecConfig config)
    : registry_(registry),
      config_(config),
      exit_queue_(ChurnConfig{config.min_per_epoch_churn_limit,
                              config.churn_limit_quotient}) {}

bool InactivityTracker::is_leaking(Epoch current, Epoch last_finalized) const {
  if (current.value() < last_finalized.value()) {
    throw std::invalid_argument("is_leaking: finalized epoch in the future");
  }
  return current.value() - last_finalized.value() >
         config_.min_epochs_to_inactivity_penalty;
}

EpochPenaltyReport InactivityTracker::process_epoch(
    Epoch current, Epoch last_finalized,
    const std::vector<std::uint8_t>& active) {
  if (active.size() != registry_.size()) {
    throw std::invalid_argument("process_epoch: activity vector size");
  }
  EpochPenaltyReport report;
  report.epoch = current;
  report.leaking = is_leaking(current, last_finalized);

  for (std::uint32_t i = 0; i < registry_.size(); ++i) {
    const ValidatorIndex v{i};
    auto& rec = registry_.at(v);
    if (rec.exited_by(current)) continue;

    // Penalty uses the score and balance *before* this epoch's update
    // (Eq 2 uses I(t-1) and s(t-1)).
    if (report.leaking || (config_.inactivity_penalty_tracks_score &&
                           rec.inactivity_score > 0)) {
      const auto penalty_gwei = static_cast<std::uint64_t>(
          (static_cast<__uint128_t>(rec.balance.value()) *
           rec.inactivity_score) /
          config_.inactivity_penalty_quotient);
      const Gwei penalty{penalty_gwei};
      rec.balance -= penalty;
      report.total_penalty += penalty;
    }

    // Score update (Eq 1).
    if (active[i] != 0) {
      const std::uint64_t dec = config_.inactivity_score_active_decrement;
      rec.inactivity_score -= std::min(dec, rec.inactivity_score);
    } else {
      rec.inactivity_score += config_.inactivity_score_bias;
    }
    if (!report.leaking) {
      const std::uint64_t dec = config_.inactivity_score_recovery_rate;
      rec.inactivity_score -= std::min(dec, rec.inactivity_score);
    }

    // Ejection of depleted validators: immediate in the paper's model,
    // queued through the churn limit when enabled.
    if (rec.balance <= config_.ejection_balance) {
      if (config_.use_churn_limit) {
        exit_queue_.request_exit(v);
      } else {
        registry_.eject(v, current);
        report.ejected.push_back(v);
      }
    }
  }
  if (config_.use_churn_limit) {
    for (const ValidatorIndex v :
         exit_queue_.process_epoch(registry_, current)) {
      report.ejected.push_back(v);
    }
  }
  return report;
}

}  // namespace leak::penalties
