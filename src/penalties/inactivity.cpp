#include "src/penalties/inactivity.hpp"

#include <stdexcept>

namespace leak::penalties {

InactivityTracker::InactivityTracker(chain::ValidatorRegistry& registry,
                                     SpecConfig config)
    : registry_(registry),
      config_(config),
      exit_queue_(ChurnConfig{config.min_per_epoch_churn_limit,
                              config.churn_limit_quotient}) {}

bool InactivityTracker::is_leaking(Epoch current, Epoch last_finalized) const {
  if (current.value() < last_finalized.value()) {
    throw std::invalid_argument("is_leaking: finalized epoch in the future");
  }
  return current.value() - last_finalized.value() >
         config_.min_epochs_to_inactivity_penalty;
}

template <bool kWithSums>
EpochPenaltyReport InactivityTracker::process_epoch_impl(
    Epoch current, Epoch last_finalized,
    const std::vector<std::uint8_t>& active, std::uint32_t split,
    BalanceSums* sums) {
  if (active.size() != registry_.size()) {
    throw std::invalid_argument("process_epoch: activity vector size");
  }
  EpochPenaltyReport report;
  report.epoch = current;
  report.leaking = is_leaking(current, last_finalized);

  for (std::uint32_t i = 0; i < registry_.size(); ++i) {
    const ValidatorIndex v{i};
    auto& rec = registry_.at(v);
    if (rec.exited_by(current)) continue;

    // Penalty uses the score and balance *before* this epoch's update
    // (Eq 2 uses I(t-1) and s(t-1)).  A zero score means a zero
    // penalty, so the 128-bit multiply/divide is skipped for exactly
    // the validators it would not change — recovered validators on a
    // live branch pay nothing either way.
    if (rec.inactivity_score > 0 &&
        (report.leaking || config_.inactivity_penalty_tracks_score)) {
      const auto penalty_gwei = static_cast<std::uint64_t>(
          (static_cast<__uint128_t>(rec.balance.value()) *
           rec.inactivity_score) /
          config_.inactivity_penalty_quotient);
      const Gwei penalty{penalty_gwei};
      rec.balance -= penalty;
      report.total_penalty += penalty;
    }

    // Score update (Eq 1).
    if (active[i] != 0) {
      const std::uint64_t dec = config_.inactivity_score_active_decrement;
      rec.inactivity_score -= std::min(dec, rec.inactivity_score);
    } else {
      rec.inactivity_score += config_.inactivity_score_bias;
    }
    if (!report.leaking) {
      const std::uint64_t dec = config_.inactivity_score_recovery_rate;
      rec.inactivity_score -= std::min(dec, rec.inactivity_score);
    }

    // Ejection of depleted validators: immediate in the paper's model,
    // queued through the churn limit when enabled.
    if (rec.balance <= config_.ejection_balance) {
      if (config_.use_churn_limit) {
        exit_queue_.request_exit(v);
        // The queued exit lands below, after the sweep — which is why
        // the fused overload rejects churn mode up front.
      } else {
        registry_.eject(v, current);
        report.ejected.push_back(v);
        continue;  // exited_by(current) now holds: out of the sums
      }
    }
    if constexpr (kWithSums) {
      if (i < split) {
        sums->prefix_total += rec.balance;
        if (active[i] != 0) sums->prefix_active += rec.balance;
      } else {
        sums->suffix_total += rec.balance;
      }
    }
  }
  if (config_.use_churn_limit) {
    for (const ValidatorIndex v :
         exit_queue_.process_epoch(registry_, current)) {
      report.ejected.push_back(v);
    }
  }
  return report;
}

EpochPenaltyReport InactivityTracker::process_epoch(
    Epoch current, Epoch last_finalized,
    const std::vector<std::uint8_t>& active) {
  return process_epoch_impl<false>(current, last_finalized, active, 0,
                                   nullptr);
}

EpochPenaltyReport InactivityTracker::process_epoch(
    Epoch current, Epoch last_finalized,
    const std::vector<std::uint8_t>& active, std::uint32_t split,
    BalanceSums* sums) {
  if (config_.use_churn_limit) {
    throw std::logic_error(
        "process_epoch: fused balance sums are incompatible with the "
        "churn limit (queued exits land after the sweep)");
  }
  *sums = BalanceSums{};
  return process_epoch_impl<true>(current, last_finalized, active, split,
                                  sums);
}

}  // namespace leak::penalties
