// Slashing: detection of equivocating attestations and application of the
// slashing penalty + forced exit (Section 3.3, penalty type (i)).
//
// The detector stores every attestation it is shown, indexed by attester,
// and reports a proof when a newly observed attestation forms a slashable
// pair (double vote or surround vote) with a stored one.  In the
// simulator, honest validators only learn of conflicting attestations
// once the partition heals — which is exactly why the Section 5.2.1
// adversary escapes punishment until after the damage is done.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "src/chain/block.hpp"
#include "src/chain/registry.hpp"
#include "src/penalties/spec_config.hpp"

namespace leak::penalties {

/// Evidence of a slashable offense: the two conflicting attestations.
struct SlashingProof {
  chain::Attestation first;
  chain::Attestation second;

  [[nodiscard]] ValidatorIndex offender() const { return first.attester; }
};

/// Watches attestations and finds slashable pairs.
class SlashingDetector {
 public:
  /// Observe an attestation; returns a proof if it conflicts with any
  /// previously observed attestation by the same validator.
  std::optional<SlashingProof> observe(const chain::Attestation& att);

  /// Number of stored attestations for a validator.
  [[nodiscard]] std::size_t observed_count(ValidatorIndex v) const;

 private:
  /// Ordered map (leaklint D4): src/penalties is a reduction layer, and
  /// an ordered container keeps any future iteration deterministic.
  std::map<ValidatorIndex, std::vector<chain::Attestation>> by_attester_;
};

/// Applies a slashing: burns balance/min_slashing_penalty_quotient and
/// ejects the offender at `at`.  Returns the burned amount; zero when the
/// validator was already slashed (idempotent).
Gwei apply_slashing(chain::ValidatorRegistry& registry, ValidatorIndex who,
                    Epoch at, const SpecConfig& config);

}  // namespace leak::penalties
