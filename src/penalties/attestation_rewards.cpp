#include "src/penalties/attestation_rewards.hpp"

namespace leak::penalties {

std::uint64_t integer_sqrt(std::uint64_t n) {
  if (n == 0) return 0;
  std::uint64_t x = n;
  // (x + 1) / 2 without overflowing at x == 2^64 - 1.
  std::uint64_t y = x / 2 + (x & 1);
  while (y < x) {
    x = y;
    y = (x + n / x) / 2;
  }
  return x;
}

AttestationRewards::AttestationRewards(
    const chain::ValidatorRegistry& registry, RewardWeights weights)
    : registry_(registry), weights_(weights) {}

Gwei AttestationRewards::base_reward(ValidatorIndex v, Epoch e) const {
  const auto total = registry_.total_active_balance(e).value();
  if (total == 0) return Gwei{};
  const auto eff = registry_.at(v).balance.value();
  const auto sqrt_total = integer_sqrt(total);
  if (sqrt_total == 0) return Gwei{};
  return Gwei{eff * kBaseRewardFactor / sqrt_total / kBaseRewardsPerEpoch};
}

std::int64_t AttestationRewards::net_delta(ValidatorIndex v, Epoch e,
                                           const Participation& p,
                                           bool in_leak) const {
  const auto base = static_cast<std::int64_t>(base_reward(v, e).value());
  const auto den = static_cast<std::int64_t>(weights_.denominator);
  std::int64_t delta = 0;
  const auto component = [&](bool timely, std::uint64_t weight) {
    const std::int64_t share =
        base * static_cast<std::int64_t>(weight) / den;
    if (timely) {
      if (!in_leak) delta += share;  // rewards suppressed during a leak
    } else {
      delta -= share;  // penalties always apply
    }
  };
  component(p.attested && p.timely_source, weights_.source);
  component(p.attested && p.timely_target, weights_.target);
  // Head votes are rewarded but (per Altair) not penalized when missed.
  if (p.attested && p.timely_head && !in_leak) {
    delta += base * static_cast<std::int64_t>(weights_.head) / den;
  }
  return delta;
}

std::int64_t AttestationRewards::apply(chain::ValidatorRegistry& registry,
                                       ValidatorIndex v, Epoch e,
                                       const Participation& p,
                                       bool in_leak) const {
  const std::int64_t delta = net_delta(v, e, p, in_leak);
  auto& rec = registry.at(v);
  if (delta >= 0) {
    rec.balance += Gwei{static_cast<std::uint64_t>(delta)};
  } else {
    rec.balance -= Gwei{static_cast<std::uint64_t>(-delta)};
  }
  return delta;
}

}  // namespace leak::penalties
