// Protocol constants governing penalties.  Two presets:
//  * paper()   — the constants the paper's analysis uses (Section 4):
//                inactivity penalty quotient 2^26, score bias +4, active
//                decrement -1, out-of-leak recovery -16, ejection at
//                16.75 ETH, leak trigger after 4 epochs without finality.
//  * mainnet() — the post-Bellatrix mainnet values, for ablations
//                (quotient 2^24, ejection at 16 ETH effective balance).
#pragma once

#include <cstdint>

#include "src/support/types.hpp"

namespace leak::penalties {

struct SpecConfig {
  /// Divisor in the per-epoch inactivity penalty I*s/quotient (Eq 2).
  std::uint64_t inactivity_penalty_quotient = 1ULL << 26;
  /// Inactivity score added per inactive epoch (Eq 1).
  std::uint64_t inactivity_score_bias = 4;
  /// Inactivity score subtracted per active epoch during a leak (Eq 1).
  std::uint64_t inactivity_score_active_decrement = 1;
  /// Extra score reduction applied every epoch while *not* leaking.
  std::uint64_t inactivity_score_recovery_rate = 16;
  /// Epochs without finality before the leak starts (Section 3.3).
  std::uint64_t min_epochs_to_inactivity_penalty = 4;
  /// Balance at or below which a validator is ejected, in Gwei.
  Gwei ejection_balance = Gwei::from_eth(16.75);
  /// Fraction of the balance burned immediately on slashing
  /// (denominator: slashed loses balance/min_slashing_penalty_quotient).
  std::uint64_t min_slashing_penalty_quotient = 32;
  /// Apply the Eq 2 penalty whenever the inactivity score is positive,
  /// not only while the leak is on (the real spec's behaviour, and the
  /// model behind analytic::residual_loss: a drained score keeps
  /// inflicting penalties after finalization resumes).  The paper's
  /// leak analysis never leaves the leak, so the default keeps the
  /// legacy gate and every existing result bit-identical.
  bool inactivity_penalty_tracks_score = false;
  /// Rate-limit ejections through the spec's exit churn (the paper's
  /// model ejects instantaneously; enable for the churn ablation).
  bool use_churn_limit = false;
  std::uint64_t min_per_epoch_churn_limit = 4;
  std::uint64_t churn_limit_quotient = 65536;

  [[nodiscard]] static SpecConfig paper() { return SpecConfig{}; }

  [[nodiscard]] static SpecConfig mainnet() {
    SpecConfig c;
    c.inactivity_penalty_quotient = 1ULL << 24;  // Bellatrix
    c.ejection_balance = Gwei::from_eth(16.0);
    return c;
  }
};

}  // namespace leak::penalties
