#include "src/penalties/slashing.hpp"

namespace leak::penalties {

std::optional<SlashingProof> SlashingDetector::observe(
    const chain::Attestation& att) {
  auto& stored = by_attester_[att.attester];
  for (const chain::Attestation& prev : stored) {
    if (chain::is_slashable_pair(prev, att)) {
      // Copy before push_back: growing the vector invalidates `prev`.
      SlashingProof proof{prev, att};
      stored.push_back(att);
      return proof;
    }
  }
  stored.push_back(att);
  return std::nullopt;
}

std::size_t SlashingDetector::observed_count(ValidatorIndex v) const {
  const auto it = by_attester_.find(v);
  return it == by_attester_.end() ? 0 : it->second.size();
}

Gwei apply_slashing(chain::ValidatorRegistry& registry, ValidatorIndex who,
                    Epoch at, const SpecConfig& config) {
  auto& rec = registry.at(who);
  if (rec.slashed) return Gwei{};
  rec.slashed = true;
  const Gwei burn{rec.balance.value() / config.min_slashing_penalty_quotient};
  rec.balance -= burn;
  registry.eject(who, at);
  return burn;
}

}  // namespace leak::penalties
