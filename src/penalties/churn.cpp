#include "src/penalties/churn.hpp"

#include <algorithm>

namespace leak::penalties {

std::uint64_t churn_limit(std::uint64_t active_count,
                          const ChurnConfig& cfg) {
  return std::max(cfg.min_per_epoch_churn_limit,
                  active_count / cfg.churn_limit_quotient);
}

void ExitQueue::request_exit(ValidatorIndex v) {
  if (v.value() >= queued_.size()) queued_.resize(v.value() + 1, 0);
  if (queued_[v.value()] != 0) return;
  queued_[v.value()] = 1;
  queue_.push_back(v);
}

bool ExitQueue::is_queued(ValidatorIndex v) const {
  return v.value() < queued_.size() && queued_[v.value()] != 0;
}

std::vector<ValidatorIndex> ExitQueue::process_epoch(
    chain::ValidatorRegistry& reg, Epoch epoch) {
  std::vector<ValidatorIndex> ejected;
  const std::uint64_t active = [&] {
    std::uint64_t count = 0;
    for (std::uint32_t i = 0; i < reg.size(); ++i) {
      if (reg.is_active(ValidatorIndex{i}, epoch)) ++count;
    }
    return count;
  }();
  const std::uint64_t limit = churn_limit(active, cfg_);
  while (!queue_.empty() && ejected.size() < limit) {
    const ValidatorIndex v = queue_.front();
    queue_.pop_front();
    queued_[v.value()] = 0;
    reg.eject(v, epoch);
    ejected.push_back(v);
  }
  return ejected;
}

}  // namespace leak::penalties
