// The inactivity-leak engine (Section 4 of the paper).
//
// Every epoch, given each validator's activity flag on the branch under
// consideration, it:
//   1. updates inactivity scores (Eq 1, plus the out-of-leak recovery);
//   2. applies inactivity penalties I(t-1) * s(t-1) / quotient (Eq 2)
//      while the leak is active;
//   3. ejects validators whose balance fell to the ejection threshold.
// The leak itself starts after `min_epochs_to_inactivity_penalty` epochs
// without finalization and stops when finalization resumes.
#pragma once

#include <cstdint>
#include <vector>

#include "src/chain/registry.hpp"
#include "src/penalties/churn.hpp"
#include "src/penalties/spec_config.hpp"

namespace leak::penalties {

/// Outcome of one epoch of processing.
struct EpochPenaltyReport {
  Epoch epoch{};
  bool leaking = false;
  Gwei total_penalty{};
  std::vector<ValidatorIndex> ejected;
};

/// Post-update balance sums over a prefix/suffix split of the registry,
/// produced in the same sweep that applies penalties (see the fused
/// process_epoch overload).  "Prefix" is [0, split), "suffix" is
/// [split, n); exited validators (including ones ejected this epoch)
/// are excluded, exactly as a separate post-epoch sweep filtered on
/// exited_by(current) would compute.
struct BalanceSums {
  Gwei prefix_total{};   ///< non-exited balance in [0, split)
  Gwei prefix_active{};  ///< of that, the validators with active[i] != 0
  Gwei suffix_total{};   ///< non-exited balance in [split, n)
};

/// Drives scores, penalties and ejections on one branch's registry view.
class InactivityTracker {
 public:
  InactivityTracker(chain::ValidatorRegistry& registry, SpecConfig config);

  /// True when the chain is in an inactivity leak at `current`, given the
  /// last finalized epoch (spec: previous epoch - finalized epoch >
  /// min_epochs_to_inactivity_penalty).
  [[nodiscard]] bool is_leaking(Epoch current, Epoch last_finalized) const;

  /// Process one epoch: `active[i]` (nonzero = active) says whether
  /// validator i was deemed active this epoch on this branch (attested
  /// with a correct target).  Exited validators are skipped.  Flags are
  /// bytes, not vector<bool>: branch trackers run on pool workers, and
  /// the packed-word proxy races under concurrent writers (leaklint D3).
  EpochPenaltyReport process_epoch(Epoch current, Epoch last_finalized,
                                   const std::vector<std::uint8_t>& active);

  /// Fused variant: identical state updates, plus post-update balance
  /// sums for `sums` accumulated in the same ascending-index sweep —
  /// saving the caller a second pass over the registry.  Integer Gwei
  /// sums in the same order make the result bit-identical to running
  /// the plain overload followed by a filtered balance sweep.  Requires
  /// use_churn_limit == false (throws std::logic_error otherwise):
  /// queued exits land after the sweep, so in-sweep sums could not see
  /// them.
  EpochPenaltyReport process_epoch(Epoch current, Epoch last_finalized,
                                   const std::vector<std::uint8_t>& active,
                                   std::uint32_t split, BalanceSums* sums);

  [[nodiscard]] const SpecConfig& config() const { return config_; }

  /// Validators waiting in the exit queue (churn mode only).
  [[nodiscard]] std::size_t pending_exits() const {
    return exit_queue_.pending();
  }

 private:
  template <bool kWithSums>
  EpochPenaltyReport process_epoch_impl(Epoch current, Epoch last_finalized,
                                        const std::vector<std::uint8_t>& active,
                                        std::uint32_t split,
                                        BalanceSums* sums);

  chain::ValidatorRegistry& registry_;
  SpecConfig config_;
  ExitQueue exit_queue_;
};

}  // namespace leak::penalties
