// Exit churn limit.
//
// The consensus spec rate-limits validator exits: at most
// max(MIN_PER_EPOCH_CHURN_LIMIT, n_active / CHURN_LIMIT_QUOTIENT)
// validators leave per epoch.  The paper's analysis ejects the whole
// drained class instantaneously at the threshold epoch (the jump in
// Figure 3); with the churn limit the ejection wave is smeared over
// n_drained / churn_limit epochs, during which the queued validators
// keep leaking stake.  This module provides the queue and the limit so
// the simulators can quantify the difference (see
// bench_ablation_churn).
#pragma once

#include <cstdint>
#include <deque>

#include "src/chain/registry.hpp"

namespace leak::penalties {

/// Spec constants (mainnet values).
struct ChurnConfig {
  std::uint64_t min_per_epoch_churn_limit = 4;
  std::uint64_t churn_limit_quotient = 65536;
};

/// churn_limit(n_active) = max(min, n_active / quotient).
[[nodiscard]] std::uint64_t churn_limit(std::uint64_t active_count,
                                        const ChurnConfig& cfg = {});

/// FIFO exit queue with per-epoch churn.
class ExitQueue {
 public:
  explicit ExitQueue(ChurnConfig cfg = {}) : cfg_(cfg) {}

  /// Request an exit (idempotent per validator).
  void request_exit(ValidatorIndex v);

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] bool is_queued(ValidatorIndex v) const;

  /// Process one epoch: eject up to churn_limit(active_count) queued
  /// validators from the registry at `epoch`.  Returns those ejected.
  std::vector<ValidatorIndex> process_epoch(chain::ValidatorRegistry& reg,
                                            Epoch epoch);

 private:
  ChurnConfig cfg_;
  std::deque<ValidatorIndex> queue_;
  std::vector<std::uint8_t> queued_;  // lazily sized
};

}  // namespace leak::penalties
