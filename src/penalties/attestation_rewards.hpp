// Attestation rewards and penalties (Section 3.3, penalty type (ii)).
//
// Outside an inactivity leak, timely and correct attestations earn
// rewards proportional to a base reward derived from the validator's
// effective balance and the total active balance; missing or incorrect
// attestations are penalized.  During a leak, attester rewards are
// suppressed (the paper's footnote 7: only proposer / sync rewards
// remain) while the penalties stay — which is precisely why inactivity
// penalties dominate the Section 5 analysis.
//
// The weights follow Altair's participation-flag split (source 14,
// target 26, head 14 of a 64 denominator), with the base reward
// computed Phase0-style from the integer square root of the total
// active balance.
#pragma once

#include <cstdint>

#include "src/chain/registry.hpp"
#include "src/penalties/spec_config.hpp"

namespace leak::penalties {

/// Participation of one validator in one epoch's attestation duties.
struct Participation {
  bool attested = false;       ///< an attestation was included at all
  bool timely_source = false;  ///< correct source within 5 slots
  bool timely_target = false;  ///< correct target within 32 slots
  bool timely_head = false;    ///< correct head within 1 slot
};

/// Altair-style weights (out of kWeightDenominator).
struct RewardWeights {
  std::uint64_t source = 14;
  std::uint64_t target = 26;
  std::uint64_t head = 14;
  std::uint64_t denominator = 64;
};

/// Integer square root (spec's `integer_squareroot`).
[[nodiscard]] std::uint64_t integer_sqrt(std::uint64_t n);

/// Reward accountant for one epoch.
class AttestationRewards {
 public:
  AttestationRewards(const chain::ValidatorRegistry& registry,
                     RewardWeights weights = RewardWeights{});

  /// Spec constants (Phase0 values).
  static constexpr std::uint64_t kBaseRewardFactor = 64;
  static constexpr std::uint64_t kBaseRewardsPerEpoch = 4;

  /// Base reward of a validator at epoch e:
  /// eff_balance * factor / isqrt(total_active) / rewards_per_epoch.
  [[nodiscard]] Gwei base_reward(ValidatorIndex v, Epoch e) const;

  /// Net balance delta (reward positive, penalty negative, in signed
  /// Gwei) for the validator's participation this epoch.  When
  /// `in_leak` is set, rewards are zeroed but penalties remain.
  [[nodiscard]] std::int64_t net_delta(ValidatorIndex v, Epoch e,
                                       const Participation& p,
                                       bool in_leak) const;

  /// Apply the delta to a (mutable) registry; returns the delta.
  std::int64_t apply(chain::ValidatorRegistry& registry, ValidatorIndex v,
                     Epoch e, const Participation& p, bool in_leak) const;

 private:
  const chain::ValidatorRegistry& registry_;
  RewardWeights weights_;
};

}  // namespace leak::penalties
