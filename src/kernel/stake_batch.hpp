// Batched, cache-friendly kernel for the Figure 8 bouncing-attack
// stake dynamics: advances a block of B independent paths in lockstep
// over epochs with structure-of-arrays state (contiguous stake[],
// score[], ejected[] and four xoshiro256** lanes per path) and
// branchless floored score updates, so the per-epoch work is
// straight-line arithmetic over L1-resident arrays instead of one
// latency-bound dependency chain per path.
//
// Bit-identity contract: path i always draws from the (seed, i)
// counter stream (leak::StreamSeeder) and every floating-point
// operation a *live* path performs is the same op in the same order as
// the scalar reference kernel (tests/oracles/scalar_oracles.cpp), so
// the recorded snapshots are bit-identical to the oracle for every
// (block, threads) combination.  Ejected paths keep advancing their
// private RNG lane and (frozen-at-zero) stake so the block stays
// branch-free; those extra draws are unobservable — an ejected path's
// stake is exactly 0.0 and never leaves it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/analytic/config.hpp"
#include "src/support/random.hpp"

namespace leak::kernel {

/// Structure-of-arrays state for a block of lockstep paths.  One
/// instance is reused across the blocks a worker claims; reset()
/// re-seeds it for a new block without reallocating.
class BatchPaths {
 public:
  /// Seed paths [first_path, first_path + n_paths): stake at the
  /// initial stake, score 0, RNG lane i from stream first_path + i.
  void reset(const analytic::AnalyticConfig& model, const StreamSeeder& seeder,
             std::size_t first_path, std::size_t n_paths);

  /// Advance every path one epoch of the Figure 8 dynamics (Eq 2
  /// penalty with the previous score, one Bernoulli draw, Eq 1 floored
  /// score update, ejection flush to exactly 0).  Branchless: a draw
  /// loop fills the uniform lane, then an update loop computes both
  /// score candidates and selects, so neither loop has a
  /// data-dependent branch and both auto-vectorize.
  void step(const analytic::AnalyticConfig& model, double p0);

  /// Regenerate the ejected flags from the stake lane (stake frozen at
  /// exactly 0 <=> ejected).  Called at snapshot epochs only, keeping
  /// the byte array out of the hot loops.
  void sync_ejected();

  [[nodiscard]] std::size_t size() const { return stake_.size(); }
  [[nodiscard]] const std::vector<double>& stake() const { return stake_; }
  [[nodiscard]] const std::vector<std::uint8_t>& ejected() const {
    return ejected_;
  }
  /// True when every path in the block has been ejected (all stakes
  /// frozen at 0): every later snapshot is deterministically 0.
  [[nodiscard]] bool all_ejected() const;

 private:
  std::vector<double> stake_;
  std::vector<double> score_;
  std::vector<std::uint8_t> ejected_;
  std::vector<double> uniform_;  ///< this epoch's [0,1) draw per path
  // xoshiro256** state, one SoA lane per word so adjacent paths'
  // generators advance with stride-1 loads.
  std::vector<std::uint64_t> s0_, s1_, s2_, s3_;
};

/// Simulate paths [first_path, first_path + n_paths) for `epochs`
/// epochs and record their stake at each snapshot epoch:
/// rows[k][out_offset + i] receives the stake of path first_path + i
/// at snaps[k] (0.0 once ejected).  The caller passes out_offset =
/// first_path to write straight into the full per-path matrix, or 0 to
/// fill a block-local slab.  `snaps` must be valid per
/// run_bouncing_mc's grid contract (the drivers validate before
/// fanning out).  `scratch` is reset here; passing the same instance
/// across calls reuses its allocations.
void simulate_stake_block(const analytic::AnalyticConfig& model, double p0,
                          std::size_t epochs,
                          const std::vector<std::size_t>& snaps,
                          const StreamSeeder& seeder, std::size_t first_path,
                          std::size_t n_paths, BatchPaths& scratch,
                          double* const* rows, std::size_t out_offset);

}  // namespace leak::kernel
