// Compiled with vectorization-friendly flags (see src/CMakeLists.txt):
// -fno-trapping-math so the selects below if-convert, -fopenmp-simd
// for the `omp simd` hints, -ffp-contract=off so no FMA contraction
// can creep in, and optionally -march=native.  None of these change
// any computed value: every operation is still an IEEE double op in
// the same order for every lane, which is what the bit-identity
// tests against the scalar oracle enforce.
#include "src/kernel/stake_batch.hpp"

#include <algorithm>

#include "src/kernel/soa_rng.hpp"

namespace leak::kernel {

void BatchPaths::reset(const analytic::AnalyticConfig& model,
                       const StreamSeeder& seeder, std::size_t first_path,
                       std::size_t n_paths) {
  stake_.assign(n_paths, model.initial_stake);
  score_.assign(n_paths, 0.0);
  ejected_.assign(n_paths, 0);
  uniform_.resize(n_paths);
  s0_.resize(n_paths);
  s1_.resize(n_paths);
  s2_.resize(n_paths);
  s3_.resize(n_paths);
  for (std::size_t i = 0; i < n_paths; ++i) {
    // Exactly Rng's constructor: expand the stream seed through four
    // splitmix64 rounds into the xoshiro lanes.
    std::uint64_t sm = seeder.seed_for(first_path + i);
    s0_[i] = splitmix64(sm);
    s1_[i] = splitmix64(sm);
    s2_[i] = splitmix64(sm);
    s3_[i] = splitmix64(sm);
  }
}

void BatchPaths::step(const analytic::AnalyticConfig& model, double p0) {
  const double quotient = model.quotient;
  const double decrement = model.score_active_decrement;
  const double bias = model.score_bias;
  const double threshold = model.ejection_threshold;
  const std::size_t n = stake_.size();
  double* __restrict stake = stake_.data();
  double* __restrict score = score_.data();
  double* __restrict uniform = uniform_.data();
  std::uint64_t* __restrict s0 = s0_.data();
  std::uint64_t* __restrict s1 = s1_.data();
  std::uint64_t* __restrict s2 = s2_.data();
  std::uint64_t* __restrict s3 = s3_.data();

  // Draw loop: advance every xoshiro256** lane one step
  // (Rng::operator()) and convert to Rng::uniform's [0,1) double.
  // The two constant multiplies are shift-adds so the loop vectorizes
  // without a packed 64-bit multiply (AVX-512DQ-only).
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t m5 = s1[i] + (s1[i] << 2);  // s1 * 5
    const std::uint64_t r7 = rotl(m5, 7);
    const std::uint64_t draw = r7 + (r7 << 3);  // rotl(s1*5,7) * 9
    const std::uint64_t t = s1[i] << 17;
    s2[i] ^= s0[i];
    s3[i] ^= s1[i];
    s1[i] ^= s2[i];
    s0[i] ^= s3[i];
    s2[i] ^= t;
    s3[i] = rotl(s3[i], 45);
    uniform[i] = to_double_exact(draw >> 11) * 0x1.0p-53;
  }

  // Update loop: same op order as the scalar oracle — Eq 2 penalty
  // with the previous score, Eq 1 floored score update as a select of
  // both candidates, ejection flush to exactly 0.0 as a select.  An
  // ejected path's stake is exactly 0.0, so the penalty and the flush
  // keep it there and its (still advancing) RNG lane is unobservable.
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) {
    stake[i] -= score[i] * stake[i] / quotient;
    const double decremented = std::max(score[i] - decrement, 0.0);
    const double incremented = score[i] + bias;
    score[i] = uniform[i] < p0 ? decremented : incremented;
    stake[i] = stake[i] <= threshold ? 0.0 : stake[i];
  }
}

void BatchPaths::sync_ejected() {
  // Ejection <=> stake flushed to exactly 0 (live stake always stays
  // above the positive ejection threshold), so the flags regenerate
  // from the stake lane alone — keeping the byte array out of the
  // per-epoch loops.
  for (std::size_t i = 0; i < stake_.size(); ++i) {
    ejected_[i] = stake_[i] == 0.0 ? 1 : 0;
  }
}

bool BatchPaths::all_ejected() const {
  return std::all_of(ejected_.begin(), ejected_.end(),
                     [](std::uint8_t e) { return e != 0; });
}

void simulate_stake_block(const analytic::AnalyticConfig& model, double p0,
                          std::size_t epochs,
                          const std::vector<std::size_t>& snaps,
                          const StreamSeeder& seeder, std::size_t first_path,
                          std::size_t n_paths, BatchPaths& scratch,
                          double* const* rows, std::size_t out_offset) {
  scratch.reset(model, seeder, first_path, n_paths);
  std::size_t next_snap = 0;
  for (std::size_t t = 1; t <= epochs && next_snap < snaps.size(); ++t) {
    scratch.step(model, p0);
    if (t == snaps[next_snap]) {
      std::copy_n(scratch.stake().data(), n_paths,
                  rows[next_snap] + out_offset);
      ++next_snap;
      // Once the whole block is ejected every later snapshot is 0 —
      // skip the remaining epochs (the scalar oracle records the same
      // zeros; this only shortcuts deterministically-dead work).
      if (next_snap < snaps.size()) {
        scratch.sync_ejected();
        if (scratch.all_ejected()) {
          for (std::size_t k = next_snap; k < snaps.size(); ++k) {
            std::fill_n(rows[k] + out_offset, n_paths, 0.0);
          }
          return;
        }
      }
    }
  }
}

}  // namespace leak::kernel
