// Vectorization-friendly pieces of the xoshiro256** draw shared by the
// SoA kernels: a rotl that GCC folds to a single rotate, and the exact
// u64 -> double conversion used to reproduce Rng::uniform's [0,1)
// doubles inside an `omp simd` loop.
#pragma once

#include <bit>
#include <cstdint>

namespace leak::kernel {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// Exact u64 -> double conversion for v < 2^53, via the 2^52
/// magic-number trick on 32-bit halves: unlike a plain cast, every op
/// here has a vector form on plain SSE2/AVX2 (packed u64 -> double
/// conversion needs AVX-512DQ).  Both halves and their recombination
/// are exact, so the result is bit-identical to (double)v.
inline double to_double_exact(std::uint64_t v) {
  constexpr std::uint64_t kMagic = 0x4330000000000000ULL;  // 2^52 as bits
  const std::uint64_t lo = v & 0xFFFFFFFFULL;
  const std::uint64_t hi = v >> 32;
  const double dlo = std::bit_cast<double>(kMagic | lo) - 0x1.0p52;
  const double dhi = std::bit_cast<double>(kMagic | hi) - 0x1.0p52;
  return dhi * 0x1.0p32 + dlo;
}

}  // namespace leak::kernel
