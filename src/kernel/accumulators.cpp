#include "src/kernel/accumulators.hpp"

#include "src/analytic/duty_cycle.hpp"

namespace leak::kernel {

SnapshotAccumulators::SnapshotAccumulators(
    unsigned branches, double beta0, const analytic::AnalyticConfig& model,
    const std::vector<std::size_t>& snaps)
    : initial_stake_(model.initial_stake),
      ejected_(snaps.size(), 0),
      capped_(snaps.size(), 0),
      exceeds_(snaps.size(), 0),
      stats_(snaps.size()),
      median_alive_(snaps.size(), P2Quantile(0.5)) {
  // Byzantine (1-in-m duty-cycled; m = 2 is the paper's semi-active
  // case) reference stake at each snapshot epoch for the Eq 23
  // exceedance criterion.
  threshold_.resize(snaps.size());
  for (std::size_t k = 0; k < snaps.size(); ++k) {
    threshold_[k] = analytic::multibranch_exceed_threshold(
        branches, beta0, static_cast<double>(snaps[k]), model);
  }
}

void SnapshotAccumulators::add(std::size_t k, double stake) {
  if (stake == 0.0) {
    ++ejected_[k];
  } else {
    median_alive_[k].add(stake);
  }
  if (stake >= initial_stake_) ++capped_[k];
  if (stake < threshold_[k]) ++exceeds_[k];
  stats_[k].add(stake);
}

void SnapshotAccumulators::finalize(std::size_t n_paths,
                                    std::vector<double>* ejected_fraction,
                                    std::vector<double>* capped_fraction,
                                    std::vector<double>* prob_beta_exceeds,
                                    std::vector<double>* median_alive_estimate,
                                    std::vector<RunningStats>* stake_stats) {
  const auto snapshots = stats_.size();
  const double n = static_cast<double>(n_paths);
  ejected_fraction->resize(snapshots);
  capped_fraction->resize(snapshots);
  prob_beta_exceeds->resize(snapshots);
  median_alive_estimate->resize(snapshots);
  for (std::size_t k = 0; k < snapshots; ++k) {
    (*ejected_fraction)[k] = static_cast<double>(ejected_[k]) / n;
    (*capped_fraction)[k] = static_cast<double>(capped_[k]) / n;
    (*prob_beta_exceeds)[k] = static_cast<double>(exceeds_[k]) / n;
    (*median_alive_estimate)[k] = median_alive_[k].estimate();
  }
  *stake_stats = std::move(stats_);
}

void DurationSummary::add(std::uint64_t duration) {
  stats_.add(static_cast<double>(duration));
  ++hist_[duration];
}

double DurationSummary::quantile(double q) const {
  // Reconstruct the sorted sample from the counting histogram: the
  // keys ascend, so this is exactly std::sort of the materialized
  // duration vector, and leak::quantile interpolates identically.
  std::vector<double> sorted;
  sorted.reserve(stats_.count());
  for (const auto& [duration, count] : hist_) {
    sorted.insert(sorted.end(), count, static_cast<double>(duration));
  }
  return leak::quantile(std::move(sorted), q);
}

}  // namespace leak::kernel
