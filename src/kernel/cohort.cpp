// Compiled with the same vectorization-friendly flags as the batch
// kernel (src/CMakeLists.txt); none of them change any computed value.
// The draw pass and the stake sum stay serial on purpose: both consume
// or accumulate in an order the bit-identity contract fixes.
#include "src/kernel/cohort.hpp"

#include <algorithm>

namespace leak::kernel {

void LeakCohort::reset(std::size_t n, const analytic::AnalyticConfig& model) {
  stake_.assign(n, model.initial_stake);
  score_.assign(n, 0.0);
  ejected_.assign(n, 0);
  uniform_.assign(n, 0.0);
}

void LeakCohort::draw(Rng& rng) {
  const std::size_t n = stake_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (ejected_[i] == 0) uniform_[i] = rng.uniform();
  }
}

void LeakCohort::update(const analytic::AnalyticConfig& model, double p0) {
  const double quotient = model.quotient;
  const double decrement = model.score_active_decrement;
  const double bias = model.score_bias;
  const double threshold = model.ejection_threshold;
  const std::size_t n = stake_.size();
  double* __restrict stake = stake_.data();
  double* __restrict score = score_.data();
  const double* __restrict uniform = uniform_.data();
  std::uint8_t* __restrict ejected = ejected_.data();

  // Same op order as the scalar oracle for live lanes; ejected lanes
  // ride along branch-free (stake frozen at exactly +0.0, dead score
  // lane fed by a stale uniform — both unobservable).
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) {
    stake[i] -= score[i] * stake[i] / quotient;
    const double decremented = std::max(score[i] - decrement, 0.0);
    const double incremented = score[i] + bias;
    score[i] = uniform[i] < p0 ? decremented : incremented;
    stake[i] = stake[i] <= threshold ? 0.0 : stake[i];
  }
  // Ejection <=> stake flushed to exactly 0 (live stake always stays
  // above the positive threshold), so the flags regenerate from the
  // stake lane alone.
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) {
    ejected[i] = stake[i] == 0.0 ? 1 : 0;
  }
}

double LeakCohort::stake_sum() const {
  // Ascending index order, exactly the scalar oracle's accumulation
  // (floating-point addition is order-sensitive; no reassociation).
  double total = 0.0;
  for (const double s : stake_) total += s;
  return total;
}

}  // namespace leak::kernel
