// SoA draw/update split for the within-run validator cohorts of the
// attack-lifetime and population drivers.  Unlike the per-path batch
// kernel (stake_batch.hpp), every validator in a cohort shares ONE
// serial RNG stream — the run's — so the draw pass must consume
// uniforms in exactly the scalar order: ascending validator index,
// skipping lanes already ejected when the epoch began.  The update
// pass is then branchless over all lanes with the same op order per
// live lane as the scalar oracle; frozen lanes hold stake at exactly
// +0.0 through the penalty and the flush (score * 0.0 / q == +0.0 and
// 0.0 <= threshold re-selects 0.0), and their stale uniform only feeds
// the dead score lane, so the extra lockstep work is unobservable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/analytic/config.hpp"
#include "src/support/random.hpp"

namespace leak::kernel {

/// Structure-of-arrays stake/score state for one run's honest cohort.
/// One instance is reused across the runs a worker claims; reset()
/// re-initializes without reallocating.
class LeakCohort {
 public:
  /// All n validators at the initial stake, score 0, live.
  void reset(std::size_t n, const analytic::AnalyticConfig& model);

  /// Draw pass: one uniform from `rng` per live lane, ascending index
  /// order — bit-compatible with the scalar per-validator
  /// rng.bernoulli(p0) sequence (bernoulli(p) == uniform() < p).
  /// Serial by construction: the lanes share the stream.
  void draw(Rng& rng);

  /// Update pass: one epoch of the Figure 8 dynamics over every lane
  /// (Eq 2 penalty with the previous score, Eq 1 floored score update
  /// as a select, ejection flush to exactly 0.0 as a select), then the
  /// ejected flags regenerate from the flushed stakes.  Branchless and
  /// auto-vectorizable; live lanes perform the same IEEE ops in the
  /// same order as the scalar oracle.
  void update(const analytic::AnalyticConfig& model, double p0);

  /// Sum of all stake lanes in ascending index order (ejected lanes
  /// contribute exactly +0.0, as in the scalar oracle's total).
  [[nodiscard]] double stake_sum() const;

  [[nodiscard]] std::size_t size() const { return stake_.size(); }
  [[nodiscard]] const std::vector<double>& stake() const { return stake_; }
  [[nodiscard]] const std::vector<std::uint8_t>& ejected() const {
    return ejected_;
  }

 private:
  std::vector<double> stake_;
  std::vector<double> score_;
  std::vector<std::uint8_t> ejected_;
  std::vector<double> uniform_;  ///< this epoch's [0,1) draw per lane
};

}  // namespace leak::kernel
