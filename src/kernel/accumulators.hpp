// Order-fed streaming accumulators shared by the Monte Carlo drivers'
// full and summary modes (and by the scalar test oracles, so oracle
// results stay comparable bit-for-bit).  Every accumulator here is a
// pure function of its insertion sequence; the drivers feed them in
// trial index order — serially in full mode, via the runner's ordered
// reduction tree in summary mode — which is what makes summary mode
// bit-identical to full mode and to every (block, threads) pair.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "src/analytic/config.hpp"
#include "src/support/stats.hpp"

namespace leak::kernel {

/// Streaming per-snapshot reduction for the bouncing-attack stake
/// distribution driver.  Each snapshot's accumulators must be fed its
/// paths in ascending path order (the Welford and P-squared summaries
/// are order-sensitive in floating point); snapshots are independent
/// of each other.
class SnapshotAccumulators {
 public:
  /// Thresholds per snapshot epoch come from the Eq 23 multibranch
  /// exceedance criterion for (branches, beta0, model).
  SnapshotAccumulators(unsigned branches, double beta0,
                       const analytic::AnalyticConfig& model,
                       const std::vector<std::size_t>& snaps);

  /// Fold one path's stake at snapshot k (ejection <=> stake flushed
  /// to exactly 0: live stake always stays above the threshold).
  void add(std::size_t k, double stake);

  /// Freeze the counts into fractions and move the summaries into the
  /// caller's result fields.
  void finalize(std::size_t n_paths, std::vector<double>* ejected_fraction,
                std::vector<double>* capped_fraction,
                std::vector<double>* prob_beta_exceeds,
                std::vector<double>* median_alive_estimate,
                std::vector<RunningStats>* stake_stats);

 private:
  double initial_stake_;
  std::vector<double> threshold_;
  std::vector<std::size_t> ejected_;
  std::vector<std::size_t> capped_;
  std::vector<std::size_t> exceeds_;
  std::vector<RunningStats> stats_;
  std::vector<P2Quantile> median_alive_;
};

/// Streaming summary of an integer-valued duration distribution: a
/// Welford mean fed in run order plus an ordered counting histogram
/// whose reconstructed sorted sample gives quantiles identical to
/// sorting the materialized vector (same multiset -> same sorted
/// order -> same type-7 interpolation).
class DurationSummary {
 public:
  void add(std::uint64_t duration);

  [[nodiscard]] std::size_t count() const { return stats_.count(); }
  [[nodiscard]] double mean() const { return stats_.mean(); }
  /// Type-7 quantile of the accumulated sample; q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

 private:
  RunningStats stats_;
  std::map<std::uint64_t, std::size_t> hist_;
};

}  // namespace leak::kernel
