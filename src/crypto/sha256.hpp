// SHA-256 (FIPS 180-4) implemented from scratch.  Used to give blocks and
// attestations content-addressed identities in the simulator.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace leak::crypto {

/// A 32-byte digest.
using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256();

  Sha256& update(std::span<const std::uint8_t> data);
  Sha256& update(std::string_view data);
  /// Convenience for hashing trivially-copyable values (integers etc.).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Sha256& update_value(const T& v) {
    return update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(&v), sizeof(T)));
  }

  /// Finalize and return the digest.  The hasher must not be reused after.
  [[nodiscard]] Digest finalize();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

/// One-shot hash of a byte span.
[[nodiscard]] Digest sha256(std::span<const std::uint8_t> data);
/// One-shot hash of a string.
[[nodiscard]] Digest sha256(std::string_view data);
/// Hash of the concatenation of two digests (Merkle inner node).
[[nodiscard]] Digest sha256_pair(const Digest& a, const Digest& b);

/// Lowercase hex encoding of a digest.
[[nodiscard]] std::string to_hex(const Digest& d);

/// First 8 bytes of the digest as an integer (convenient short id).
[[nodiscard]] std::uint64_t short_id(const Digest& d);

}  // namespace leak::crypto
