// Merkle root over a list of digests, with inclusion proofs.  Used for
// content-addressing batches of attestations in blocks.
#pragma once

#include <vector>

#include "src/crypto/sha256.hpp"

namespace leak::crypto {

/// Compute the Merkle root of `leaves`.  An empty list hashes to the
/// digest of the empty string; odd layers duplicate the last element.
[[nodiscard]] Digest merkle_root(const std::vector<Digest>& leaves);

/// An inclusion proof: sibling hashes bottom-up plus the leaf index.
struct MerkleProof {
  std::size_t index = 0;
  std::vector<Digest> siblings;
};

/// Build the proof for leaf `index`.
[[nodiscard]] MerkleProof merkle_prove(const std::vector<Digest>& leaves,
                                       std::size_t index);

/// Verify a proof against a root.
[[nodiscard]] bool merkle_verify(const Digest& leaf, const MerkleProof& proof,
                                 const Digest& root);

}  // namespace leak::crypto
