#include "src/crypto/merkle.hpp"

#include <stdexcept>

namespace leak::crypto {

namespace {

std::vector<Digest> next_layer(const std::vector<Digest>& layer) {
  std::vector<Digest> out;
  out.reserve((layer.size() + 1) / 2);
  for (std::size_t i = 0; i < layer.size(); i += 2) {
    const Digest& left = layer[i];
    const Digest& right = (i + 1 < layer.size()) ? layer[i + 1] : layer[i];
    out.push_back(sha256_pair(left, right));
  }
  return out;
}

}  // namespace

Digest merkle_root(const std::vector<Digest>& leaves) {
  if (leaves.empty()) return sha256(std::string_view{});
  std::vector<Digest> layer = leaves;
  while (layer.size() > 1) layer = next_layer(layer);
  return layer.front();
}

MerkleProof merkle_prove(const std::vector<Digest>& leaves,
                         std::size_t index) {
  if (index >= leaves.size()) {
    throw std::out_of_range("merkle_prove: index out of range");
  }
  MerkleProof proof;
  proof.index = index;
  std::vector<Digest> layer = leaves;
  std::size_t i = index;
  while (layer.size() > 1) {
    const std::size_t sib = (i % 2 == 0) ? std::min(i + 1, layer.size() - 1) : i - 1;
    proof.siblings.push_back(layer[sib]);
    layer = next_layer(layer);
    i /= 2;
  }
  return proof;
}

bool merkle_verify(const Digest& leaf, const MerkleProof& proof,
                   const Digest& root) {
  Digest acc = leaf;
  std::size_t i = proof.index;
  for (const Digest& sib : proof.siblings) {
    acc = (i % 2 == 0) ? sha256_pair(acc, sib) : sha256_pair(sib, acc);
    i /= 2;
  }
  return acc == root;
}

}  // namespace leak::crypto
