#include "src/crypto/keys.hpp"

#include <algorithm>

namespace leak::crypto {

KeyPair KeyPair::derive(ValidatorIndex who, std::uint64_t seed) {
  Sha256 h;
  h.update("leak/keypair/v1");
  h.update_value(seed);
  h.update_value(who.value());
  const Digest secret = h.finalize();
  Sha256 hp;
  hp.update("leak/pubkey/v1");
  hp.update(std::span<const std::uint8_t>(secret.data(), secret.size()));
  return KeyPair{who, secret, hp.finalize()};
}

Signature KeyPair::sign(const Digest& message) const {
  Sha256 h;
  h.update("leak/sig/v1");
  h.update(std::span<const std::uint8_t>(secret_.data(), secret_.size()));
  h.update(std::span<const std::uint8_t>(message.data(), message.size()));
  return Signature{h.finalize(), owner_};
}

std::vector<KeyPair> KeyRegistry::generate(std::uint32_t n,
                                           std::uint64_t seed) {
  std::vector<KeyPair> pairs;
  pairs.reserve(n);
  public_keys_.clear();
  secrets_.clear();
  public_keys_.reserve(n);
  secrets_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    KeyPair kp = KeyPair::derive(ValidatorIndex{i}, seed);
    public_keys_.push_back(kp.public_key());
    // Recompute the secret the same way derive() does so verification can
    // recompute MACs.  (A real registry would verify with the public key;
    // the simulated scheme is symmetric.)
    Sha256 h;
    h.update("leak/keypair/v1");
    h.update_value(seed);
    h.update_value(i);
    secrets_.push_back(h.finalize());
    pairs.push_back(kp);
  }
  return pairs;
}

bool KeyRegistry::verify(const Digest& message, const Signature& sig) const {
  const auto idx = static_cast<std::size_t>(sig.signer.value());
  if (idx >= secrets_.size()) return false;
  Sha256 h;
  h.update("leak/sig/v1");
  h.update(std::span<const std::uint8_t>(secrets_[idx].data(),
                                         secrets_[idx].size()));
  h.update(std::span<const std::uint8_t>(message.data(), message.size()));
  return h.finalize() == sig.mac;
}

void AggregateSignature::add(const Signature& sig) {
  // Keep signers sorted and unique, mirroring an aggregation bitfield.
  const auto it =
      std::lower_bound(signers_.begin(), signers_.end(), sig.signer);
  if (it != signers_.end() && *it == sig.signer) return;
  const auto pos = static_cast<std::size_t>(it - signers_.begin());
  signers_.insert(it, sig.signer);
  parts_.insert(parts_.begin() + static_cast<std::ptrdiff_t>(pos), sig);
}

bool AggregateSignature::verify(const Digest& message,
                                const KeyRegistry& registry) const {
  return std::all_of(parts_.begin(), parts_.end(), [&](const Signature& s) {
    return registry.verify(message, s);
  });
}

}  // namespace leak::crypto
