// Simulated signature scheme.
//
// The paper's model only needs signatures to (a) identify the sender,
// (b) be unforgeable by other validators, and (c) support aggregation the
// way Ethereum aggregates attestation signatures.  We simulate a
// BLS-like scheme on top of SHA-256: sig = H(secret || message).  Within
// the simulator nobody can produce another validator's signature without
// its secret, and verification recomputes the MAC.  This deliberately
// trades real asymmetric cryptography for determinism and speed while
// preserving the protocol-visible interface (sign / verify / aggregate).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/crypto/sha256.hpp"
#include "src/support/types.hpp"

namespace leak::crypto {

/// Opaque signature: digest plus the signer for verification lookups.
struct Signature {
  Digest mac{};
  ValidatorIndex signer{};

  friend bool operator==(const Signature&, const Signature&) = default;
};

/// A validator keypair.  The public key is H(secret).
class KeyPair {
 public:
  /// Deterministically derive the keypair for a validator from a seed.
  static KeyPair derive(ValidatorIndex who, std::uint64_t seed);

  [[nodiscard]] ValidatorIndex owner() const { return owner_; }
  [[nodiscard]] const Digest& public_key() const { return public_; }

  /// Sign a message digest.
  [[nodiscard]] Signature sign(const Digest& message) const;

 private:
  KeyPair(ValidatorIndex owner, Digest secret, Digest pub)
      : owner_(owner), secret_(secret), public_(pub) {}

  ValidatorIndex owner_;
  Digest secret_;
  Digest public_;
};

/// Registry of public keys; verifies individual and aggregate signatures.
class KeyRegistry {
 public:
  /// Create keypairs for validators [0, n) from a seed; returns the
  /// secret keypairs (handed to agents) while retaining public keys.
  std::vector<KeyPair> generate(std::uint32_t n, std::uint64_t seed);

  [[nodiscard]] std::size_t size() const { return public_keys_.size(); }

  /// Verify that `sig` is `who`'s signature over `message`.
  [[nodiscard]] bool verify(const Digest& message, const Signature& sig) const;

 private:
  std::vector<Digest> public_keys_;
  std::vector<Digest> secrets_;  // retained so verify can recompute the MAC
};

/// Aggregate of many signatures over the same message (attestation
/// aggregation).  Keeps the participation bitfield like Ethereum does.
class AggregateSignature {
 public:
  void add(const Signature& sig);

  [[nodiscard]] const std::vector<ValidatorIndex>& signers() const {
    return signers_;
  }
  [[nodiscard]] std::size_t count() const { return signers_.size(); }

  /// Verify every constituent signature against the registry.
  [[nodiscard]] bool verify(const Digest& message,
                            const KeyRegistry& registry) const;

 private:
  std::vector<ValidatorIndex> signers_;
  std::vector<Signature> parts_;
};

}  // namespace leak::crypto
