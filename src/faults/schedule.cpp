#include "src/faults/schedule.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace leak::faults {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument("fault schedule: " + msg);
}

const char* kind_name(const FaultEvent& e) {
  switch (e.index()) {
    case 0: return "partition-open";
    case 1: return "partition-heal";
    case 2: return "latency";
    case 3: return "loss";
    default: return "outage";
  }
}

const char* link_name(LinkClass link) {
  switch (link) {
    case LinkClass::kAll: return "all";
    case LinkClass::kIntra: return "intra";
    case LinkClass::kCross: return "cross";
  }
  return "all";
}

LinkClass link_from_name(const std::string& name, const std::string& where) {
  if (name == "all") return LinkClass::kAll;
  if (name == "intra") return LinkClass::kIntra;
  if (name == "cross") return LinkClass::kCross;
  fail(where + ": unknown link class \"" + name +
       "\" (expected all, intra or cross)");
}

/// Can two weather episodes afflict the same link?
bool links_collide(LinkClass a, LinkClass b) {
  return a == b || a == LinkClass::kAll || b == LinkClass::kAll;
}

/// Reject keys outside the allowed set -- the strict half of the JSON
/// contract (a typo like "facter" must not silently mean factor=1).
void check_keys(const json::Object& obj, const std::string& where,
                std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : obj) {
    bool known = false;
    for (const char* a : allowed) known = known || key == a;
    if (!known) {
      std::string expected;
      for (const char* a : allowed) {
        if (!expected.empty()) expected += ", ";
        expected += a;
      }
      fail(where + ": unknown key \"" + key + "\" (expected " + expected +
           ")");
    }
  }
}

const json::Value& require(const json::Object& obj, const std::string& where,
                           const char* key) {
  for (const auto& [k, v] : obj) {
    if (k == key) return v;
  }
  fail(where + ": missing key \"" + std::string(key) + "\"");
}

std::size_t get_epoch(const json::Object& obj, const std::string& where,
                      const char* key) {
  const json::Value& v = require(obj, where, key);
  if (!v.is_int() || v.as_int() < 0) {
    fail(where + ": \"" + std::string(key) +
         "\" must be a non-negative integer epoch");
  }
  return static_cast<std::size_t>(v.as_int());
}

std::uint32_t get_branch(const json::Object& obj, const std::string& where,
                         const char* key) {
  const json::Value& v = require(obj, where, key);
  if (!v.is_int() || v.as_int() < 0 || v.as_int() > 255) {
    fail(where + ": \"" + std::string(key) +
         "\" must be a branch id in [0, 255]");
  }
  return static_cast<std::uint32_t>(v.as_int());
}

double get_number(const json::Object& obj, const std::string& where,
                  const char* key) {
  const json::Value& v = require(obj, where, key);
  if (!v.is_number()) {
    fail(where + ": \"" + std::string(key) + "\" must be a number");
  }
  return v.as_double();
}

LinkClass get_link(const json::Object& obj, const std::string& where) {
  const json::Value& v = require(obj, where, "link");
  if (!v.is_string()) {
    fail(where + ": \"link\" must be a string (all, intra or cross)");
  }
  return link_from_name(v.as_string(), where);
}

FaultEvent parse_event(const json::Value& v, std::size_t index) {
  const std::string where = "event " + std::to_string(index);
  if (!v.is_object()) fail(where + ": must be an object");
  const json::Object& obj = v.as_object();
  const json::Value& kind_v = require(obj, where, "kind");
  if (!kind_v.is_string()) fail(where + ": \"kind\" must be a string");
  const std::string& kind = kind_v.as_string();
  const std::string at = where + " (" + kind + ")";

  if (kind == "partition-open") {
    check_keys(obj, at, {"kind", "epoch", "branch"});
    PartitionOpen e;
    e.epoch = get_epoch(obj, at, "epoch");
    e.branch = get_branch(obj, at, "branch");
    return e;
  }
  if (kind == "partition-heal") {
    check_keys(obj, at, {"kind", "epoch", "branch", "into"});
    PartitionHeal e;
    e.epoch = get_epoch(obj, at, "epoch");
    e.branch = get_branch(obj, at, "branch");
    e.into = get_branch(obj, at, "into");
    return e;
  }
  if (kind == "latency") {
    check_keys(obj, at, {"kind", "from_epoch", "span_epochs", "link",
                         "factor"});
    LatencyEpisode e;
    e.from_epoch = get_number(obj, at, "from_epoch");
    e.span_epochs = get_number(obj, at, "span_epochs");
    e.link = get_link(obj, at);
    e.factor = get_number(obj, at, "factor");
    return e;
  }
  if (kind == "loss") {
    check_keys(obj, at, {"kind", "from_epoch", "span_epochs", "link",
                         "drop"});
    LossEpisode e;
    e.from_epoch = get_number(obj, at, "from_epoch");
    e.span_epochs = get_number(obj, at, "span_epochs");
    e.link = get_link(obj, at);
    e.drop = get_number(obj, at, "drop");
    return e;
  }
  if (kind == "outage") {
    check_keys(obj, at, {"kind", "from_epoch", "span_epochs", "cohort"});
    ValidatorOutage e;
    e.from_epoch = get_epoch(obj, at, "from_epoch");
    e.span_epochs = get_epoch(obj, at, "span_epochs");
    e.cohort = get_number(obj, at, "cohort");
    return e;
  }
  fail(where + ": unknown event kind \"" + kind +
       "\" (expected partition-open, partition-heal, latency, loss or "
       "outage)");
}

json::Value event_to_json(const FaultEvent& event) {
  json::Value obj = json::Value::object();
  obj.set("kind", kind_name(event));
  if (const auto* e = std::get_if<PartitionOpen>(&event)) {
    obj.set("epoch", static_cast<std::uint64_t>(e->epoch));
    obj.set("branch", static_cast<std::uint64_t>(e->branch));
  } else if (const auto* e = std::get_if<PartitionHeal>(&event)) {
    obj.set("epoch", static_cast<std::uint64_t>(e->epoch));
    obj.set("branch", static_cast<std::uint64_t>(e->branch));
    obj.set("into", static_cast<std::uint64_t>(e->into));
  } else if (const auto* e = std::get_if<LatencyEpisode>(&event)) {
    obj.set("from_epoch", e->from_epoch);
    obj.set("span_epochs", e->span_epochs);
    obj.set("link", link_name(e->link));
    obj.set("factor", e->factor);
  } else if (const auto* e = std::get_if<LossEpisode>(&event)) {
    obj.set("from_epoch", e->from_epoch);
    obj.set("span_epochs", e->span_epochs);
    obj.set("link", link_name(e->link));
    obj.set("drop", e->drop);
  } else if (const auto* e = std::get_if<ValidatorOutage>(&event)) {
    obj.set("from_epoch", static_cast<std::uint64_t>(e->from_epoch));
    obj.set("span_epochs", static_cast<std::uint64_t>(e->span_epochs));
    obj.set("cohort", e->cohort);
  }
  return obj;
}

/// [start, end) of a weather episode for the overlap rules.
struct Span {
  double from = 0.0;
  double to = 0.0;
  LinkClass link = LinkClass::kAll;
  std::size_t index = 0;
};

void check_episode_overlap(const std::vector<Span>& spans,
                           const char* kind) {
  for (std::size_t i = 0; i < spans.size(); ++i) {
    for (std::size_t j = i + 1; j < spans.size(); ++j) {
      const Span& a = spans[i];
      const Span& b = spans[j];
      if (!links_collide(a.link, b.link)) continue;
      if (a.from < b.to && b.from < a.to) {
        fail("overlapping " + std::string(kind) + " episodes on link class " +
             link_name(a.link) + "/" + link_name(b.link) + ": event " +
             std::to_string(a.index) + " spans [" +
             json::format_double(a.from) + ", " + json::format_double(a.to) +
             ") and event " + std::to_string(b.index) + " starts at " +
             json::format_double(b.from) +
             " (split or merge them -- stacked episodes are ambiguous)");
      }
    }
  }
}

}  // namespace

double event_start(const FaultEvent& e) {
  if (const auto* open = std::get_if<PartitionOpen>(&e)) {
    return static_cast<double>(open->epoch);
  }
  if (const auto* heal = std::get_if<PartitionHeal>(&e)) {
    return static_cast<double>(heal->epoch);
  }
  if (const auto* lat = std::get_if<LatencyEpisode>(&e)) {
    return lat->from_epoch;
  }
  if (const auto* loss = std::get_if<LossEpisode>(&e)) {
    return loss->from_epoch;
  }
  return static_cast<double>(std::get<ValidatorOutage>(e).from_epoch);
}

void FaultSchedule::validate() const {
  // Monotone timeline.
  for (std::size_t i = 1; i < events.size(); ++i) {
    const double prev = event_start(events[i - 1]);
    const double cur = event_start(events[i]);
    if (cur < prev) {
      fail("events must be ordered by start epoch: event " +
           std::to_string(i) + " (" + kind_name(events[i]) + ", t=" +
           json::format_double(cur) + ") starts before event " +
           std::to_string(i - 1) + " (t=" + json::format_double(prev) + ")");
    }
  }

  std::vector<std::size_t> open_epoch_of(256, 0);   // 0 = not opened
  std::vector<std::size_t> heal_epoch_of(256, 0);   // 0 = not healed
  std::uint32_t top_branch = 0;
  std::vector<Span> latency, loss;
  std::vector<std::pair<std::size_t, std::size_t>> outages;  // [from, to)

  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::string where =
        "event " + std::to_string(i) + " (" + kind_name(events[i]) + ")";
    if (const auto* e = std::get_if<PartitionOpen>(&events[i])) {
      if (e->epoch < 1) fail(where + ": open epoch must be >= 1");
      if (e->branch < 1) {
        fail(where + ": branch 0 is the canonical branch and is always "
             "open; opens need branch >= 1");
      }
      if (open_epoch_of[e->branch] != 0) {
        fail(where + ": branch " + std::to_string(e->branch) +
             " opened twice (first at epoch " +
             std::to_string(open_epoch_of[e->branch]) + ")");
      }
      open_epoch_of[e->branch] = e->epoch;
      top_branch = std::max(top_branch, e->branch);
    } else if (const auto* e = std::get_if<PartitionHeal>(&events[i])) {
      if (e->into != 0) {
        fail(where + ": only merges into the canonical branch 0 are "
             "supported (got into=" + std::to_string(e->into) + ")");
      }
      if (e->branch < 1 || open_epoch_of[e->branch] == 0) {
        fail(where + ": branch " + std::to_string(e->branch) +
             " heals without a prior partition-open");
      }
      if (heal_epoch_of[e->branch] != 0) {
        fail(where + ": overlapping heals for branch " +
             std::to_string(e->branch) + " (already healed at epoch " +
             std::to_string(heal_epoch_of[e->branch]) + ")");
      }
      if (e->epoch <= open_epoch_of[e->branch]) {
        fail(where + ": heal epoch " + std::to_string(e->epoch) +
             " must be after the branch opened (epoch " +
             std::to_string(open_epoch_of[e->branch]) + ")");
      }
      heal_epoch_of[e->branch] = e->epoch;
    } else if (const auto* e = std::get_if<LatencyEpisode>(&events[i])) {
      if (e->span_epochs <= 0.0) {
        fail(where + ": span_epochs must be positive (got " +
             json::format_double(e->span_epochs) + ")");
      }
      if (e->from_epoch < 0.0) fail(where + ": from_epoch must be >= 0");
      if (e->factor <= 0.0) {
        fail(where + ": factor must be > 0 (got " +
             json::format_double(e->factor) + ")");
      }
      latency.push_back({e->from_epoch, e->from_epoch + e->span_epochs,
                         e->link, i});
    } else if (const auto* e = std::get_if<LossEpisode>(&events[i])) {
      if (e->span_epochs <= 0.0) {
        fail(where + ": span_epochs must be positive (got " +
             json::format_double(e->span_epochs) + ")");
      }
      if (e->from_epoch < 0.0) fail(where + ": from_epoch must be >= 0");
      if (e->drop < 0.0 || e->drop > 1.0) {
        fail(where + ": drop must be a probability in [0, 1] (got " +
             json::format_double(e->drop) + ")");
      }
      loss.push_back({e->from_epoch, e->from_epoch + e->span_epochs,
                      e->link, i});
    } else if (const auto* e = std::get_if<ValidatorOutage>(&events[i])) {
      if (e->span_epochs == 0) fail(where + ": span_epochs must be >= 1");
      if (e->cohort <= 0.0 || e->cohort > 1.0) {
        fail(where + ": cohort must be in (0, 1] (got " +
             json::format_double(e->cohort) + ")");
      }
      for (const auto& [from, to] : outages) {
        if (e->from_epoch < to && from < e->from_epoch + e->span_epochs) {
          fail(where + ": overlapping outages (an earlier outage spans [" +
               std::to_string(from) + ", " + std::to_string(to) + "))");
        }
      }
      outages.emplace_back(e->from_epoch, e->from_epoch + e->span_epochs);
    }
  }

  // Compiled branch ids must be dense: the partition simulator indexes
  // branches contiguously, so a schedule opening branches {1, 3} has
  // no meaning for branch 2.
  for (std::uint32_t b = 1; b <= top_branch; ++b) {
    if (open_epoch_of[b] == 0) {
      fail("branch ids must be contiguous from 1: branch " +
           std::to_string(top_branch) + " opens but branch " +
           std::to_string(b) + " never does");
    }
  }

  check_episode_overlap(latency, "latency");
  check_episode_overlap(loss, "loss");
}

std::uint32_t FaultSchedule::max_branch() const {
  std::uint32_t top = 0;
  for (const FaultEvent& e : events) {
    if (const auto* open = std::get_if<PartitionOpen>(&e)) {
      top = std::max(top, open->branch);
    }
  }
  return top;
}

json::Value FaultSchedule::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("version", static_cast<std::int64_t>(1));
  json::Value arr = json::Value::array();
  for (const FaultEvent& e : events) arr.push_back(event_to_json(e));
  doc.set("events", std::move(arr));
  return doc;
}

std::string FaultSchedule::dump() const { return to_json().dump(); }

FaultSchedule FaultSchedule::from_json(const json::Value& doc) {
  if (!doc.is_object()) {
    fail("document must be an object {\"version\": 1, \"events\": [...]}");
  }
  check_keys(doc.as_object(), "schedule", {"version", "events"});
  const json::Value& version = require(doc.as_object(), "schedule",
                                       "version");
  if (!version.is_int() || version.as_int() != 1) {
    fail("unsupported schedule version (expected 1)");
  }
  const json::Value& events = require(doc.as_object(), "schedule", "events");
  if (!events.is_array()) fail("\"events\" must be an array");

  FaultSchedule s;
  s.events.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    s.events.push_back(parse_event(events.at(i), i));
  }
  s.validate();
  return s;
}

FaultSchedule FaultSchedule::from_string(const std::string& text) {
  std::string error;
  const auto doc = json::Value::parse(text, &error);
  if (!doc) fail(error);
  return from_json(*doc);
}

FaultSchedule FaultSchedule::load_file(const std::string& path) {
  std::string error;
  const auto doc = json::Value::load_file(path, &error);
  if (!doc) fail(error);
  try {
    return from_json(*doc);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

FaultSchedule FaultSchedule::staggered_partition(std::uint32_t branches,
                                                 std::size_t open_stagger,
                                                 std::size_t heal_epoch,
                                                 std::size_t heal_stagger) {
  if (branches < 2) {
    fail("staggered_partition: need branches >= 2 (got " +
         std::to_string(branches) + ")");
  }
  std::vector<FaultEvent> opens, heals;
  for (std::uint32_t b = 1; b < branches; ++b) {
    opens.push_back(PartitionOpen{
        1 + static_cast<std::size_t>(b - 1) * open_stagger, b});
    if (heal_epoch > 0) {
      heals.push_back(PartitionHeal{
          heal_epoch + static_cast<std::size_t>(b - 1) * heal_stagger, b, 0});
    }
  }
  // Both lists are sorted by construction; merge keeps the timeline
  // monotone even when heals interleave with later opens.
  FaultSchedule s;
  std::merge(opens.begin(), opens.end(), heals.begin(), heals.end(),
             std::back_inserter(s.events),
             [](const FaultEvent& a, const FaultEvent& b) {
               return event_start(a) < event_start(b);
             });
  s.validate();
  return s;
}

FaultSchedule FaultSchedule::legacy_partition(std::uint32_t branches,
                                              std::size_t heal_epoch,
                                              std::size_t heal_stagger) {
  return staggered_partition(branches, 0, heal_epoch, heal_stagger);
}

}  // namespace leak::faults
