#include "src/faults/driver.hpp"

#include <stdexcept>
#include <variant>

namespace leak::faults {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument("fault driver: " + msg);
}

net::LinkClass to_net(LinkClass link) {
  switch (link) {
    case LinkClass::kIntra: return net::LinkClass::kIntra;
    case LinkClass::kCross: return net::LinkClass::kCross;
    case LinkClass::kAll: break;
  }
  return net::LinkClass::kAll;
}

}  // namespace

void compile_partition(const FaultSchedule& schedule,
                       sim::PartitionSimConfig* cfg) {
  schedule.validate();
  const std::uint32_t top = schedule.max_branch();
  if (top == 0) {
    fail("compile_partition: schedule has no partition-open events; "
         "nothing splits, so there is no partition scenario to run");
  }

  std::vector<sim::BranchWindow> windows(top);
  std::vector<sim::OutageWindow> outages;
  for (const FaultEvent& event : schedule.events) {
    if (const auto* open = std::get_if<PartitionOpen>(&event)) {
      windows[open->branch - 1].open_epoch = open->epoch;
    } else if (const auto* heal = std::get_if<PartitionHeal>(&event)) {
      windows[heal->branch - 1].heal_epoch = heal->epoch;
    } else if (const auto* outage = std::get_if<ValidatorOutage>(&event)) {
      outages.push_back({outage->from_epoch, outage->span_epochs,
                         outage->cohort});
    } else {
      fail("compile_partition: " + std::string(
               std::holds_alternative<LatencyEpisode>(event) ? "latency"
                                                             : "loss") +
           " episodes have no epoch-granular analogue; route them through "
           "the slot-level network path (apply_network / flaky-network)");
    }
  }

  cfg->branches = top + 1;
  cfg->windows = std::move(windows);
  cfg->outages = std::move(outages);
  cfg->heal_epoch = 0;
  cfg->heal_stagger = 0;
}

void apply_network(const FaultSchedule& schedule, double seconds_per_epoch,
                   net::NetworkConfig* cfg) {
  schedule.validate();
  if (seconds_per_epoch <= 0.0) {
    fail("apply_network: seconds_per_epoch must be > 0");
  }
  std::vector<net::LatencyEpisode> latency;
  std::vector<net::LossEpisode> loss;
  for (const FaultEvent& event : schedule.events) {
    if (const auto* e = std::get_if<LatencyEpisode>(&event)) {
      latency.push_back({e->from_epoch * seconds_per_epoch,
                         (e->from_epoch + e->span_epochs) * seconds_per_epoch,
                         to_net(e->link), e->factor});
    } else if (const auto* e = std::get_if<LossEpisode>(&event)) {
      loss.push_back({e->from_epoch * seconds_per_epoch,
                      (e->from_epoch + e->span_epochs) * seconds_per_epoch,
                      to_net(e->link), e->drop});
    } else {
      fail("apply_network: partition/outage events apply to the "
           "epoch-granular partition path (compile_partition); the "
           "slot-level network models the two-region split via the "
           "p0/gst_epoch knobs");
    }
  }
  cfg->latency_episodes = std::move(latency);
  cfg->loss_episodes = std::move(loss);
}

}  // namespace leak::faults
