// The deterministic FaultDriver: replays a validated FaultSchedule
// into the two simulation backends.
//
//  * compile_partition -- the epoch-granular sim::PartitionSimConfig
//    path: partition-open/heal events become explicit per-branch
//    windows (generalizing the legacy heal_epoch/heal_stagger knobs,
//    bit-identically for schedules produced by
//    FaultSchedule::legacy_partition), outages become honest-cohort
//    inactivity windows.  Latency/loss episodes have no epoch-granular
//    analogue and are rejected.
//
//  * apply_network -- the event-queue net::Network path: latency/loss
//    episodes become scripted weather on the gossip network, with
//    epoch times scaled to simulated seconds.  Partition/outage events
//    are rejected here: the slot-level simulator models the two-region
//    split structurally (p0 / gst_epoch).
//
// Both directions throw std::invalid_argument with a message that
// names the unsupported event, so a schedule aimed at the wrong
// backend fails fast instead of silently dropping events.
#pragma once

#include "src/faults/schedule.hpp"
#include "src/net/network.hpp"
#include "src/sim/partition_sim.hpp"

namespace leak::faults {

/// Compile the partition-open/heal/outage events of `schedule` onto
/// `cfg`: sets cfg->branches, cfg->windows and cfg->outages, and
/// clears the legacy heal_epoch/heal_stagger knobs (the schedule is
/// now the single source of truth).  Every other field (n_validators,
/// beta0, strategy, horizon, spec) is left untouched.  Throws on
/// latency/loss events or a schedule with no partition-open.
void compile_partition(const FaultSchedule& schedule,
                       sim::PartitionSimConfig* cfg);

/// Apply the latency/loss episodes of `schedule` onto `cfg`,
/// converting epoch times to simulated seconds (seconds_per_epoch =
/// 32 slots * 12 s for the slot-level simulator).  Throws on
/// partition/outage events.
void apply_network(const FaultSchedule& schedule, double seconds_per_epoch,
                   net::NetworkConfig* cfg);

}  // namespace leak::faults
