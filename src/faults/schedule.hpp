// Typed, JSON-round-trippable fault-injection schedule: an ordered
// timeline of scripted "network weather" events (cascading partition
// opens/heals, latency spikes, lossy links, validator outages) that a
// FaultDriver (driver.hpp) replays into the epoch-granular partition
// simulator or the event-queue slot-level network.
//
// The schedule is the contract every robustness scenario shares:
//   - strict validation (monotone event times, per-branch heal-overlap
//     rules, contiguous branch ids, bounded probabilities) so a broken
//     schedule fails fast with an actionable message instead of
//     silently mis-simulating;
//   - strict JSON round-trip via src/support/json (unknown keys and
//     unknown event kinds are rejected, documents serialize
//     deterministically) so schedules are durable artifacts: sweep
//     cells carry them as a `faults` param and leakctl --faults loads
//     them from disk;
//   - the legacy heal_epoch/heal_stagger knobs compile to an
//     equivalent schedule (legacy_partition) that is bit-identical by
//     golden test, so the scripted path subsumes the paper's fixed
//     partition-then-heal arc.
//
// Times are epochs throughout (the partition simulator's native unit);
// the network driver scales them to seconds.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/support/json.hpp"

namespace leak::faults {

/// Which links a weather episode afflicts (mapped onto
/// net::LinkClass by the driver).
enum class LinkClass : std::uint8_t { kAll = 0, kIntra = 1, kCross = 2 };

/// Branch `branch` (>= 1) splits off the canonical branch 0 at the
/// start of `epoch`, forking the canonical registry state.  A k-way
/// simultaneous split is k-1 opens at the same epoch.
struct PartitionOpen {
  std::size_t epoch = 1;
  std::uint32_t branch = 1;
};

/// Branch `branch` merges back at the start of `epoch`; its honest
/// class attests on the target branch from then on.  Only merges into
/// the canonical branch 0 are supported (`into` exists so schedules
/// stay forward-compatible with branch-to-branch merges).
struct PartitionHeal {
  std::size_t epoch = 0;
  std::uint32_t branch = 1;
  std::uint32_t into = 0;
};

/// While active (send time in [from_epoch, from_epoch + span_epochs)),
/// per-message network jitter on matching links is stretched by
/// `factor` beyond the minimum delay -- factor > 1 deliberately
/// violates the synchrony bound Delta.
struct LatencyEpisode {
  double from_epoch = 0.0;
  double span_epochs = 0.0;
  LinkClass link = LinkClass::kAll;
  double factor = 1.0;
};

/// While active, messages sent on matching links are dropped with
/// probability `drop` (drawn from a dedicated weather RNG stream).
struct LossEpisode {
  double from_epoch = 0.0;
  double span_epochs = 0.0;
  LinkClass link = LinkClass::kAll;
  double drop = 0.0;
};

/// The first round(cohort * n_honest) honest validators go inactive on
/// every branch during [from_epoch, from_epoch + span_epochs).
struct ValidatorOutage {
  std::size_t from_epoch = 0;
  std::size_t span_epochs = 0;
  double cohort = 0.0;
};

using FaultEvent = std::variant<PartitionOpen, PartitionHeal, LatencyEpisode,
                                LossEpisode, ValidatorOutage>;

/// Epoch at which an event starts (the ordering key).
[[nodiscard]] double event_start(const FaultEvent& e);

/// An ordered fault timeline.  Construct directly or parse from JSON;
/// `validate()` enforces the invariants either way.
struct FaultSchedule {
  std::vector<FaultEvent> events;

  /// Enforce the schedule invariants; throws std::invalid_argument
  /// with an actionable message on the first violation:
  ///  - events ordered by non-decreasing start epoch;
  ///  - partition branch ids contiguous from 1, one open per branch,
  ///    at most one heal per branch (overlapping heals rejected),
  ///    heals strictly after their open, merges into branch 0 only;
  ///  - episode spans positive, latency factors > 0, drop
  ///    probabilities in [0, 1], outage cohorts in (0, 1];
  ///  - same-kind weather episodes whose link classes can afflict the
  ///    same link must not overlap in time.
  void validate() const;

  /// Highest partition branch id opened (0 = no partition events).
  [[nodiscard]] std::uint32_t max_branch() const;

  /// JSON document: {"version": 1, "events": [...]}.
  [[nodiscard]] json::Value to_json() const;
  /// Compact single-line serialization (the `faults` param payload).
  [[nodiscard]] std::string dump() const;

  /// Strict parse + validate.  Unknown top-level keys, unknown event
  /// kinds, unknown per-event keys, missing keys and wrong types all
  /// throw std::invalid_argument naming the offending event.
  [[nodiscard]] static FaultSchedule from_json(const json::Value& doc);
  /// Parse a schedule document from text (parse errors carry the byte
  /// offset) and validate it.
  [[nodiscard]] static FaultSchedule from_string(const std::string& text);
  /// Load + parse + validate a schedule file; errors are prefixed
  /// with the path (torn/truncated files fail the strict parse).
  [[nodiscard]] static FaultSchedule load_file(const std::string& path);

  /// The staggered-partition family as a schedule: branch b
  /// (1 <= b < branches) opens at 1 + (b-1) * open_stagger and, when
  /// heal_epoch > 0, heals at heal_epoch + (b-1) * heal_stagger.
  [[nodiscard]] static FaultSchedule staggered_partition(
      std::uint32_t branches, std::size_t open_stagger,
      std::size_t heal_epoch, std::size_t heal_stagger);

  /// The legacy PartitionSimConfig knobs (every branch opens at epoch
  /// 1) as a schedule -- the two-event open/heal arc for the paper's
  /// two-branch scenarios.  Compiling it back is bit-identical to the
  /// legacy path, pinned by golden tests.
  [[nodiscard]] static FaultSchedule legacy_partition(
      std::uint32_t branches, std::size_t heal_epoch,
      std::size_t heal_stagger);
};

}  // namespace leak::faults
