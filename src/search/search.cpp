#include "src/search/search.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <stdexcept>
#include <utility>

#include "src/runner/trial_runner.hpp"
#include "src/search/journal.hpp"
#include "src/support/table.hpp"

namespace leak::search {

namespace {

using scenario::ParamSet;
using scenario::SweepAxis;

/// Row-major flat index of a candidate (last axis fastest) — the same
/// expansion order as the sweep engine, so sweep_cell_params is the
/// single source of candidate identity.
[[nodiscard]] std::size_t flat_index(const std::vector<SweepAxis>& axes,
                                     const std::vector<std::size_t>& cand) {
  std::size_t flat = 0;
  for (std::size_t a = 0; a < axes.size(); ++a) {
    flat = flat * axes[a].values.size() + cand[a];
  }
  return flat;
}

[[nodiscard]] bool better(bool maximize, double v, double incumbent) {
  return maximize ? v > incumbent : v < incumbent;
}

/// Budgeted, journal-backed batch evaluator.  All evaluation order and
/// journal appends are in candidate order, independent of thread count.
class Evaluator {
 public:
  Evaluator(const scenario::Scenario& sc, const Objective& obj,
            const std::vector<SweepAxis>& axes, const SearchOptions& opts,
            EvalJournal* journal, SearchResult* result)
      : sc_(sc),
        obj_(obj),
        axes_(axes),
        opts_(opts),
        journal_(journal),
        result_(result),
        pool_(opts.threads) {}

  [[nodiscard]] bool exhausted() const { return exhausted_; }

  [[nodiscard]] bool has(const std::vector<std::size_t>& cand) const {
    return memo_.find(cand) != memo_.end();
  }

  [[nodiscard]] double value_of(const std::vector<std::size_t>& cand) const {
    return memo_.at(cand);
  }

  /// Candidate params: the sweep engine's canonical cell identity for
  /// grid candidates, the unmodified base for the baseline point.
  [[nodiscard]] ParamSet params_of(
      const std::vector<std::size_t>& cand) const {
    if (cand.empty()) return obj_.base;
    return scenario::sweep_cell_params(obj_.base, axes_,
                                       flat_index(axes_, cand),
                                       /*vary_seed=*/false);
  }

  /// Make every candidate's value available, consuming budget for each
  /// candidate not yet visited this run (journal replays included, so
  /// a resumed search stops exactly where the uninterrupted one
  /// would).  Returns false when the budget ran out before the batch
  /// finished — the caller must stop without deciding anything.
  [[nodiscard]] bool ensure(
      const std::vector<std::vector<std::size_t>>& cands) {
    std::vector<std::vector<std::size_t>> fresh;
    for (const auto& cand : cands) {
      if (memo_.find(cand) != memo_.end()) continue;
      if (std::find(fresh.begin(), fresh.end(), cand) != fresh.end()) {
        continue;
      }
      if (result_->evaluations >= opts_.budget) {
        exhausted_ = true;
        break;
      }
      ++result_->evaluations;
      if (journal_ != nullptr) {
        const auto it = journal_->cache().find(cand);
        if (it != journal_->cache().end()) {
          memo_[cand] = it->second;
          ++result_->cache_hits;
          result_->history.push_back({cand, it->second, /*cached=*/true});
          continue;
        }
      }
      fresh.push_back(cand);
    }
    run_fresh(fresh);
    return !exhausted_;
  }

 private:
  void run_fresh(const std::vector<std::vector<std::size_t>>& fresh) {
    if (fresh.empty()) return;
    const bool parallel = pool_.threads() > 1 && fresh.size() > 1;
    const auto values = pool_.run(fresh.size(), [&](std::size_t i) {
      ParamSet p = params_of(fresh[i]);
      // Parallel candidates pin their inner fan-out to one thread
      // (exactly like run_sweep --parallel-cells); every scenario is
      // bit-identical across thread counts, so the value is the same
      // either way — this only moves where the parallelism sits.
      if (parallel) p.set("threads", std::int64_t{1});
      const scenario::ScenarioResult res = sc_.run(p);
      if (!res.has_metric(obj_.metric)) {
        std::string msg = "objective metric \"" + obj_.metric +
                          "\" is not produced by scenario \"" + obj_.scenario +
                          "\" (metrics:";
        for (const auto& [name, unused] : res.metrics) {
          static_cast<void>(unused);
          msg += " " + name;
        }
        msg += ")";
        throw std::invalid_argument(msg);
      }
      return res.metric(obj_.metric);
    });
    // Merge and journal strictly in candidate order.
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      memo_[fresh[i]] = values[i];
      result_->history.push_back({fresh[i], values[i], /*cached=*/false});
      if (journal_ != nullptr &&
          !journal_->append(fresh[i], params_of(fresh[i]), values[i])) {
        throw std::runtime_error("cannot append to evaluation journal");
      }
    }
  }

  const scenario::Scenario& sc_;
  const Objective& obj_;
  const std::vector<SweepAxis>& axes_;
  const SearchOptions& opts_;
  EvalJournal* journal_;
  SearchResult* result_;
  runner::TrialRunner pool_;
  /// Ordered map (leaklint D4: src/search is a kernel/reduction TU).
  std::map<std::vector<std::size_t>, double> memo_;
  bool exhausted_ = false;
};

/// Coarse seeding grid: the cartesian product of {first, middle, last}
/// per axis, in row-major order (last axis fastest).
[[nodiscard]] std::vector<std::vector<std::size_t>> seed_candidates(
    const std::vector<SweepAxis>& axes) {
  std::vector<std::vector<std::size_t>> per_axis;
  std::size_t total = 1;
  for (const auto& axis : axes) {
    const std::size_t len = axis.values.size();
    std::vector<std::size_t> picks{0};
    if (len > 2) picks.push_back(len / 2);
    if (len > 1) picks.push_back(len - 1);
    total *= picks.size();
    per_axis.push_back(std::move(picks));
  }
  std::vector<std::vector<std::size_t>> out;
  out.reserve(total);
  for (std::size_t k = 0; k < total; ++k) {
    std::size_t rem = k;
    std::vector<std::size_t> cand(axes.size());
    for (std::size_t a = axes.size(); a-- > 0;) {
      cand[a] = per_axis[a][rem % per_axis[a].size()];
      rem /= per_axis[a].size();
    }
    out.push_back(std::move(cand));
  }
  return out;
}

}  // namespace

SearchResult run_search(const scenario::Scenario& sc,
                        const Objective& objective,
                        std::vector<SweepAxis> axes,
                        const SearchOptions& options) {
  if (axes.empty()) {
    throw std::invalid_argument("search needs at least one axis");
  }
  for (const auto& axis : axes) {
    if (axis.values.empty()) {
      throw std::invalid_argument("axis \"" + axis.param +
                                  "\" has no values");
    }
  }
  if (options.budget == 0) {
    throw std::invalid_argument("search budget must be >= 1");
  }
  if (auto err = sc.spec().validate(objective.base)) {
    throw std::invalid_argument(*err);
  }

  SearchResult result;
  result.scenario = sc.spec().name();
  result.metric = objective.metric;
  result.maximize = objective.maximize;
  result.axes = axes;
  result.base_params = objective.base;
  result.budget = options.budget;
  result.grid_size = 1;
  for (const auto& axis : axes) result.grid_size *= axis.values.size();

  std::optional<EvalJournal> journal;
  if (!options.journal_path.empty()) {
    std::string error;
    journal = EvalJournal::open(options.journal_path, objective, axes, &error);
    if (!journal) throw std::invalid_argument(error);
  }

  Evaluator ev(sc, objective, axes, options,
               journal ? &*journal : nullptr, &result);

  // The fixed strategy (unmodified base) is always evaluation #1: the
  // report compares the searched best against it.
  static_cast<void>(ev.ensure({{}}));
  result.baseline_value = ev.value_of({});

  // Phase 1: coarse grid seeding.
  const auto seeds = seed_candidates(axes);
  const bool seeded = ev.ensure(seeds);
  std::vector<std::size_t> best;
  double best_value = 0.0;
  bool have_best = false;
  for (const auto& cand : seeds) {
    if (!ev.has(cand)) continue;  // budget may have cut the batch short
    const double v = ev.value_of(cand);
    if (!have_best || better(result.maximize, v, best_value) ||
        (v == best_value && cand < best)) {
      best = cand;
      best_value = v;
      have_best = true;
    }
  }
  if (!have_best) {
    // The budget covered only the baseline.
    result.budget_exhausted = true;
    result.best_params = objective.base;
    result.best_value = result.baseline_value;
    return result;
  }

  // Phase 2: pattern descent — per-axis +/- step probes from the
  // incumbent, step halving on a failed pass, convergence after
  // `patience` failed unit-step passes.
  std::vector<std::size_t> steps(axes.size());
  for (std::size_t a = 0; a < axes.size(); ++a) {
    steps[a] = std::max<std::size_t>(1, axes[a].values.size() / 4);
  }
  std::size_t unit_fails = 0;
  bool searching = seeded;
  while (searching) {
    bool moved = false;
    for (std::size_t a = 0; a < axes.size() && searching; ++a) {
      const std::size_t len = axes[a].values.size();
      if (len <= 1) continue;
      std::vector<std::vector<std::size_t>> neighbors;
      std::vector<std::size_t> lo = best;
      lo[a] = best[a] >= steps[a] ? best[a] - steps[a] : 0;
      if (lo != best) neighbors.push_back(std::move(lo));
      std::vector<std::size_t> hi = best;
      hi[a] = std::min(best[a] + steps[a], len - 1);
      if (hi != best && (neighbors.empty() || hi != neighbors.front())) {
        neighbors.push_back(std::move(hi));
      }
      if (neighbors.empty()) continue;
      if (!ev.ensure(neighbors)) {
        searching = false;
        break;
      }
      // The better of the probes; equal values pick the
      // lexicographically smaller candidate; only a strict improvement
      // over the incumbent moves (ties never oscillate).
      const std::vector<std::size_t>* pick = nullptr;
      double pick_value = 0.0;
      for (const auto& nb : neighbors) {
        const double v = ev.value_of(nb);
        if (pick == nullptr || better(result.maximize, v, pick_value) ||
            (v == pick_value && nb < *pick)) {
          pick = &nb;
          pick_value = v;
        }
      }
      if (pick != nullptr && better(result.maximize, pick_value, best_value)) {
        best = *pick;
        best_value = pick_value;
        moved = true;
      }
    }
    if (!searching) break;
    if (moved) {
      unit_fails = 0;
      continue;
    }
    bool at_unit = true;
    for (const std::size_t s : steps) at_unit = at_unit && s == 1;
    if (at_unit) {
      if (++unit_fails >= std::max<std::size_t>(1, options.patience)) {
        result.converged = true;
        searching = false;
      }
    } else {
      for (auto& s : steps) s = std::max<std::size_t>(1, s / 2);
    }
  }

  result.budget_exhausted = ev.exhausted();
  result.best_cand = best;
  result.best_params = ev.params_of(best);
  result.best_value = best_value;
  return result;
}

json::Value SearchResult::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("scenario", scenario);
  doc.set("metric", metric);
  doc.set("maximize", maximize);
  doc.set("axes", scenario::axes_to_json(axes));
  doc.set("grid_size", static_cast<std::int64_t>(grid_size));
  doc.set("budget", static_cast<std::int64_t>(budget));
  doc.set("evaluations", static_cast<std::int64_t>(evaluations));
  doc.set("cache_hits", static_cast<std::int64_t>(cache_hits));
  doc.set("converged", converged);
  doc.set("budget_exhausted", budget_exhausted);
  json::Value baseline = json::Value::object();
  baseline.set("params", base_params.to_json());
  baseline.set("value", baseline_value);
  doc.set("baseline", std::move(baseline));
  json::Value best = json::Value::object();
  json::Value cand = json::Value::array();
  for (const std::size_t i : best_cand) {
    cand.push_back(static_cast<std::int64_t>(i));
  }
  best.set("cand", std::move(cand));
  best.set("params", best_params.to_json());
  best.set("value", best_value);
  doc.set("best", std::move(best));
  json::Value hist = json::Value::array();
  for (const auto& e : history) {
    json::Value rec = json::Value::object();
    json::Value indices = json::Value::array();
    for (const std::size_t i : e.cand) {
      indices.push_back(static_cast<std::int64_t>(i));
    }
    rec.set("cand", std::move(indices));
    rec.set("value", e.value);
    rec.set("cached", e.cached);
    hist.push_back(std::move(rec));
  }
  doc.set("history", std::move(hist));
  return doc;
}

std::string SearchResult::to_text() const {
  std::string out = "search " + scenario + " / " + metric +
                    (maximize ? " (maximize)" : " (minimize)") + "\n";
  out += "  grid " + std::to_string(grid_size) + " candidates, budget " +
         std::to_string(budget) + ": " + std::to_string(evaluations) +
         " evaluations (" + std::to_string(cache_hits) + " journal hits), " +
         (converged          ? "converged"
          : budget_exhausted ? "budget exhausted"
                             : "stopped") +
         "\n";
  out += "  baseline (fixed strategy): " + Table::fmt_exact(baseline_value) +
         "\n";
  out += "  best:";
  for (std::size_t a = 0; a < axes.size(); ++a) {
    const scenario::ParamValue& v =
        a < best_cand.size() ? axes[a].values[best_cand[a]]
                             : *base_params.find(axes[a].param);
    out += " " + axes[a].param + "=" +
           scenario::ParamSet::value_to_string(v);
  }
  out += " -> " + Table::fmt_exact(best_value) + "\n";
  return out;
}

std::string SearchResult::history_to_csv() const {
  std::string out;
  for (const auto& axis : axes) out += axis.param + ",";
  out += "value,cached\n";
  for (const auto& e : history) {
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const scenario::ParamValue& v =
          e.cand.empty() ? *base_params.find(axes[a].param)
                         : axes[a].values[e.cand[a]];
      out += scenario::ParamSet::value_to_string(v) + ",";
    }
    out += Table::fmt_exact(e.value);
    out += e.cached ? ",true\n" : ",false\n";
  }
  return out;
}

json::Value boost_report(const scenario::Scenario& sc,
                         const scenario::ParamSet& params,
                         const std::vector<std::int64_t>& ladder,
                         unsigned boost_percent, std::string* text_out) {
  const auto run_point = [&](std::int64_t n_byz, std::int64_t boost) {
    ParamSet p = params;
    p.set("n_byzantine", n_byz);
    p.set("proposer_boost", boost);
    return sc.run(p);
  };
  const std::int64_t n_honest = params.get_int("n_honest");
  Table table({"n_byzantine", "adversary_stake", "mean_stall_off",
               "stall_frac_off", "mean_stall_on", "stall_frac_on"});
  json::Value rows = json::Value::array();
  std::optional<double> min_stake_off;
  std::optional<double> min_stake_on;
  for (const std::int64_t nb : ladder) {
    const auto off = run_point(nb, 0);
    const auto on =
        run_point(nb, static_cast<std::int64_t>(boost_percent));
    const double stake = static_cast<double>(nb) /
                         static_cast<double>(nb + n_honest);
    const double frac_off =
        off.metric("stall_exceeds_leak_trigger_fraction");
    const double frac_on = on.metric("stall_exceeds_leak_trigger_fraction");
    if (!min_stake_off && frac_off >= 0.5) min_stake_off = stake;
    if (!min_stake_on && frac_on >= 0.5) min_stake_on = stake;
    table.add_row({std::to_string(nb), Table::fmt_exact(stake),
                   Table::fmt_exact(off.metric("mean_finality_stall_epochs")),
                   Table::fmt_exact(frac_off),
                   Table::fmt_exact(on.metric("mean_finality_stall_epochs")),
                   Table::fmt_exact(frac_on)});
    json::Value row = json::Value::object();
    row.set("n_byzantine", nb);
    row.set("adversary_stake", stake);
    row.set("mean_stall_off", off.metric("mean_finality_stall_epochs"));
    row.set("stall_frac_off", frac_off);
    row.set("mean_stall_on", on.metric("mean_finality_stall_epochs"));
    row.set("stall_frac_on", frac_on);
    rows.push_back(std::move(row));
  }
  json::Value doc = json::Value::object();
  doc.set("boost_percent", static_cast<std::int64_t>(boost_percent));
  doc.set("criterion", "stall_exceeds_leak_trigger_fraction >= 0.5");
  doc.set("rows", std::move(rows));
  doc.set("min_stalling_stake_boost_off",
          min_stake_off ? json::Value(*min_stake_off) : json::Value(nullptr));
  doc.set("min_stalling_stake_boost_on",
          min_stake_on ? json::Value(*min_stake_on) : json::Value(nullptr));
  if (text_out != nullptr) {
    std::string text = "proposer-boost countermeasure (boost " +
                       std::to_string(boost_percent) +
                       "%) against the searched strategy\n";
    text += table.to_string();
    text += "min adversary stake stalling finality: boost off ";
    text += min_stake_off ? Table::fmt_exact(*min_stake_off)
                          : std::string("n/a");
    text += ", boost on ";
    text +=
        min_stake_on ? Table::fmt_exact(*min_stake_on) : std::string("n/a");
    text += "\n";
  *text_out = std::move(text);
  }
  return doc;
}

}  // namespace leak::search
