// What the adversary-strategy optimizer extremizes: one registry
// scenario, one scalar metric of its ScenarioResult, a direction, and
// the base parameter assignment that candidates are applied on top of.
// Three search configurations ship with the library (the ROADMAP's
// balancing equivocation timing, semi-active duty-cycle schedule, and
// partition split/heal timing); `resolve_search` turns either a
// shipped config name or an ad-hoc "scenario:metric[:max|min]" string
// plus --axis/--set text into a fully validated search problem before
// a single candidate is evaluated (fail fast on unknown knobs).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/scenario/registry.hpp"
#include "src/scenario/spec.hpp"
#include "src/scenario/sweep.hpp"

namespace leak::search {

/// The black-box objective: extremize `metric` of `scenario` over
/// candidates derived from `base` by the search axes.
struct Objective {
  std::string scenario;
  std::string metric;
  bool maximize = true;
  scenario::ParamSet base;
};

/// One shipped search configuration: objective identity plus default
/// base overrides, axes (the --axis text syntax), and a default
/// evaluation budget sized for the config's grid.
struct SearchConfig {
  std::string name;
  std::string description;
  std::string scenario;
  std::string metric;
  bool maximize = true;
  /// "key=value" base-parameter overrides applied before user --set.
  std::vector<std::string> sets;
  /// "key=lo:hi:step" / "key=v1,v2,..." axis texts.
  std::vector<std::string> axes;
  std::size_t budget = 48;
};

/// The shipped configs, in catalog order.
[[nodiscard]] const std::vector<SearchConfig>& builtin_search_configs();

/// Lookup by name; nullptr when absent.
[[nodiscard]] const SearchConfig* find_search_config(std::string_view name);

/// A fully validated search problem, ready for run_search.
struct ResolvedSearch {
  Objective objective;
  std::vector<scenario::SweepAxis> axes;
  std::size_t budget = 48;
  /// Shipped config the problem came from; empty for ad-hoc searches.
  std::string config_name;
};

/// Resolve `objective_text` — a shipped config name or
/// "scenario:metric[:max|min]" — plus user --axis/--set text into a
/// ResolvedSearch.  Every axis and set is validated against the
/// scenario spec here, before any worker or evaluation starts; a user
/// axis for a parameter a config already sweeps replaces the config's
/// axis.  Returns nullopt and sets `error` on failure.
[[nodiscard]] std::optional<ResolvedSearch> resolve_search(
    const scenario::ScenarioRegistry& registry, std::string_view objective_text,
    const std::vector<std::string>& axis_texts,
    const std::vector<std::string>& set_texts, std::string* error);

}  // namespace leak::search
