// Durable evaluation cache for the optimizer: one CRC-framed JSONL
// file in the serve store's format (src/serve/store.hpp).  Line 1 is a
// header carrying the search identity (scenario, metric, direction,
// base params, axes); every further line is one candidate evaluation
// {"cand": [grid indices], "params": {...}, "value": v}.  A killed
// search resumes by replaying the journal: cached candidates are never
// re-evaluated and never re-appended, and because the optimizer visits
// candidates in a deterministic order, an interrupted-then-resumed
// journal is byte-identical to an uninterrupted one.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/scenario/spec.hpp"
#include "src/scenario/sweep.hpp"
#include "src/search/objective.hpp"
#include "src/serve/store.hpp"
#include "src/support/json.hpp"

namespace leak::search {

class EvalJournal {
 public:
  /// Open (creating or resuming) the journal at `path`.  On resume the
  /// header must match the current search identity exactly — a journal
  /// written by a different search is an error, not a silent cache
  /// poisoning — and a torn tail left by kill -9 mid-append is
  /// truncated before appends continue.  Returns nullopt and sets
  /// `error` on failure.
  [[nodiscard]] static std::optional<EvalJournal> open(
      std::string path, const Objective& objective,
      const std::vector<scenario::SweepAxis>& axes, std::string* error);

  /// Evaluations replayed from the file, keyed by candidate grid
  /// indices (the baseline point uses the empty key).
  [[nodiscard]] const std::map<std::vector<std::size_t>, double>& cache()
      const {
    return cache_;
  }

  /// Append one fresh evaluation (one write(2) + fsync).
  [[nodiscard]] bool append(const std::vector<std::size_t>& cand,
                            const scenario::ParamSet& params, double value);

  /// The header payload for a search identity (what line 1 stores).
  [[nodiscard]] static json::Value identity_json(
      const Objective& objective,
      const std::vector<scenario::SweepAxis>& axes);

 private:
  explicit EvalJournal(std::unique_ptr<serve::ResultsStore> store)
      : store_(std::move(store)) {}

  std::unique_ptr<serve::ResultsStore> store_;
  std::map<std::vector<std::size_t>, double> cache_;
};

}  // namespace leak::search
