#include "src/search/journal.hpp"

#include <utility>

namespace leak::search {

json::Value EvalJournal::identity_json(
    const Objective& objective, const std::vector<scenario::SweepAxis>& axes) {
  json::Value doc = json::Value::object();
  doc.set("kind", "search-journal");
  doc.set("scenario", objective.scenario);
  doc.set("metric", objective.metric);
  doc.set("maximize", objective.maximize);
  doc.set("base", objective.base.to_json());
  doc.set("axes", scenario::axes_to_json(axes));
  return doc;
}

std::optional<EvalJournal> EvalJournal::open(
    std::string path, const Objective& objective,
    const std::vector<scenario::SweepAxis>& axes, std::string* error) {
  const auto fail = [&](std::string msg) -> std::optional<EvalJournal> {
    if (error != nullptr) *error = std::move(msg);
    return std::nullopt;
  };
  auto store = std::make_unique<serve::ResultsStore>(std::move(path));
  std::string scan_error;
  auto scan = store->scan(&scan_error);
  if (scan.torn_tail) {
    // kill -9 mid-append: drop the torn line so appends continue from
    // a clean record boundary (the lost evaluation simply re-runs).
    scan_error.clear();
    if (!store->repair(&scan_error)) return fail(scan_error);
  } else if (!scan_error.empty()) {
    return fail(scan_error);
  }

  EvalJournal journal(std::move(store));
  const json::Value identity = identity_json(objective, axes);
  if (scan.records.empty()) {
    if (!journal.store_->append(identity)) {
      return fail("cannot write " + journal.store_->path());
    }
    return journal;
  }

  if (scan.records.front().payload.dump() != identity.dump()) {
    return fail(journal.store_->path() +
                ": journal belongs to a different search (header does not "
                "match this objective/axes; use a fresh --journal path)");
  }
  for (std::size_t i = 1; i < scan.records.size(); ++i) {
    const json::Value& rec = scan.records[i].payload;
    const json::Value* cand = rec.find("cand");
    const json::Value* value = rec.find("value");
    if (cand == nullptr || !cand->is_array() || value == nullptr ||
        !value->is_number()) {
      return fail(journal.store_->path() + ": malformed evaluation record " +
                  std::to_string(i));
    }
    std::vector<std::size_t> key;
    key.reserve(cand->size());
    for (std::size_t k = 0; k < cand->size(); ++k) {
      if (!cand->at(k).is_int() || cand->at(k).as_int() < 0) {
        return fail(journal.store_->path() +
                    ": malformed candidate in record " + std::to_string(i));
      }
      key.push_back(static_cast<std::size_t>(cand->at(k).as_int()));
    }
    journal.cache_[std::move(key)] = value->as_double();
  }
  return journal;
}

bool EvalJournal::append(const std::vector<std::size_t>& cand,
                         const scenario::ParamSet& params, double value) {
  json::Value rec = json::Value::object();
  json::Value indices = json::Value::array();
  for (const std::size_t i : cand) {
    indices.push_back(static_cast<std::int64_t>(i));
  }
  rec.set("cand", std::move(indices));
  rec.set("params", params.to_json());
  rec.set("value", value);
  if (!store_->append(rec)) return false;
  cache_[cand] = value;
  return true;
}

}  // namespace leak::search
