// Deterministic black-box optimizer over a scenario's knob grid:
// coarse grid seeding followed by pattern/coordinate descent with a
// shrinking step, an evaluation budget, and tie-breaking rules that
// make the whole trajectory — every candidate visited, every journal
// byte — bit-identical across thread counts and across kill/resume.
//
// Determinism contract:
//   * A candidate is a vector of per-axis grid indices; its parameter
//     set comes from scenario::sweep_cell_params (the sweep engine's
//     canonical cell identity), so a searched candidate reproduces the
//     identical `leakctl run`/sweep cell.
//   * Candidate batches fan out through runner::TrialRunner and merge
//     in candidate order; parallel evaluation pins each candidate's
//     inner threads to 1 (exactly like run_sweep --parallel-cells),
//     and every scenario is itself bit-identical across thread
//     counts, so values never depend on where they were computed.
//   * Decisions use only metric values and lexicographic candidate
//     order (strict improvement moves; ties keep the incumbent or
//     pick the lexicographically smaller candidate), never timing.
//   * The budget counts distinct candidates consumed, whether freshly
//     evaluated or replayed from the journal — so a resumed search
//     stops at exactly the point the uninterrupted one would.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/scenario/registry.hpp"
#include "src/scenario/spec.hpp"
#include "src/scenario/sweep.hpp"
#include "src/search/objective.hpp"
#include "src/support/json.hpp"

namespace leak::search {

struct SearchOptions {
  /// Total distinct candidate evaluations (the baseline point and
  /// journal replays included).
  std::size_t budget = 48;
  /// Failed unit-step descent passes tolerated before converging.
  std::size_t patience = 1;
  /// Candidate fan-out threads (0/1 = sequential evaluation with the
  /// scenario's own inner parallelism).
  unsigned threads = 0;
  /// CRC-framed JSONL evaluation journal; empty = in-memory cache only.
  std::string journal_path;
};

/// One evaluation in visit order.
struct Evaluation {
  /// Per-axis grid indices; empty = the fixed-strategy baseline.
  std::vector<std::size_t> cand;
  double value = 0.0;
  /// Replayed from the journal instead of freshly computed.
  bool cached = false;
};

struct SearchResult {
  std::string scenario;
  std::string metric;
  bool maximize = true;
  std::vector<scenario::SweepAxis> axes;

  /// The unmodified base params (the fixed strategy) and their value.
  scenario::ParamSet base_params;
  double baseline_value = 0.0;
  std::vector<std::size_t> best_cand;
  scenario::ParamSet best_params;
  double best_value = 0.0;

  std::size_t grid_size = 0;
  std::size_t budget = 0;
  std::size_t evaluations = 0;  ///< distinct candidates consumed
  std::size_t cache_hits = 0;   ///< of which replayed from the journal
  bool converged = false;
  bool budget_exhausted = false;
  std::vector<Evaluation> history;

  [[nodiscard]] json::Value to_json() const;
  [[nodiscard]] std::string to_text() const;
  /// One CSV row per evaluation: axis values then the objective value.
  [[nodiscard]] std::string history_to_csv() const;
};

/// Run the search.  Throws std::invalid_argument on an invalid base,
/// empty axes, an unknown metric, or a journal that belongs to a
/// different search; I/O errors on the journal throw std::runtime_error.
[[nodiscard]] SearchResult run_search(const scenario::Scenario& sc,
                                      const Objective& objective,
                                      std::vector<scenario::SweepAxis> axes,
                                      const SearchOptions& options = {});

/// Proposer-boost countermeasure report against a fixed (typically
/// searched-best) balancing strategy: for every rung of the
/// n_byzantine ladder, run `params` with the fork-choice boost off and
/// at `boost_percent`, and report the minimum adversary stake whose
/// majority of trials stalls finality past the leak trigger
/// (stall_exceeds_leak_trigger_fraction >= 0.5) in each mode.
/// `text_out`, when non-null, receives the human-readable table.
[[nodiscard]] json::Value boost_report(const scenario::Scenario& sc,
                                       const scenario::ParamSet& params,
                                       const std::vector<std::int64_t>& ladder,
                                       unsigned boost_percent,
                                       std::string* text_out);

}  // namespace leak::search
