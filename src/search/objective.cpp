#include "src/search/objective.hpp"

namespace leak::search {

const std::vector<SearchConfig>& builtin_search_configs() {
  // Grids deliberately include the fixed-strategy default point, so a
  // completed search can never report a best below the paper baseline.
  static const std::vector<SearchConfig> kConfigs = {
      {
          "balancing-timing",
          "Worst-case balancing attack: tune the proposer-equivocation "
          "release timing (sibling release delay, cross-side release "
          "delay) to maximize the finality stall",
          "balancing-attack",
          "mean_finality_stall_epochs",
          /*maximize=*/true,
          {"paths=4", "n_honest=16", "n_byzantine=5", "epochs=10"},
          {"release_delay=0.1,0.7,1.3,1.9,2.5,3.1,3.7",
           "cross_delay=0.1,0.7,1.3,1.9,2.5"},
          /*budget=*/24,
      },
      {
          "semiactive-duty",
          "Worst-case semi-active rotation: tune the duty-cycle schedule "
          "(branch count m, Byzantine stake) to maximize the probability "
          "the duty-cycled stake exceeds the exceedance threshold",
          "semiactive-sweep",
          "mc_prob_beta_exceeds",
          /*maximize=*/true,
          {"paths=256", "epochs=1200"},
          {"branches=2:8:1", "beta0=0.26:0.34:0.02"},
          /*budget=*/20,
      },
      {
          "partition-timing",
          "Worst-case k-partition weather: tune the split/heal timing "
          "(first heal epoch, heal stagger) to maximize the honest "
          "validators' residual stake loss",
          "multi-partition-recovery",
          "mean_residual_loss_eth",
          /*maximize=*/true,
          {"paths=8", "n_validators=200", "max_epochs=4000"},
          {"heal_epoch=400:2800:400", "heal_stagger=0:1000:250"},
          /*budget=*/20,
      },
  };
  return kConfigs;
}

const SearchConfig* find_search_config(std::string_view name) {
  for (const auto& c : builtin_search_configs()) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::optional<ResolvedSearch> resolve_search(
    const scenario::ScenarioRegistry& registry, std::string_view objective_text,
    const std::vector<std::string>& axis_texts,
    const std::vector<std::string>& set_texts, std::string* error) {
  const auto fail = [&](std::string msg) -> std::optional<ResolvedSearch> {
    if (error != nullptr) *error = std::move(msg);
    return std::nullopt;
  };

  ResolvedSearch out;
  std::vector<std::string> config_sets;
  std::vector<std::string> config_axes;
  if (const SearchConfig* cfg = find_search_config(objective_text)) {
    out.config_name = cfg->name;
    out.objective.scenario = cfg->scenario;
    out.objective.metric = cfg->metric;
    out.objective.maximize = cfg->maximize;
    out.budget = cfg->budget;
    config_sets = cfg->sets;
    config_axes = cfg->axes;
  } else {
    // "scenario:metric" with an optional ":max" / ":min" suffix.
    const std::string text(objective_text);
    const std::size_t colon = text.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) {
      std::string known = "objective \"" + text +
                          "\" is neither a shipped search config (";
      const auto& configs = builtin_search_configs();
      for (std::size_t i = 0; i < configs.size(); ++i) {
        if (i != 0) known += ", ";
        known += configs[i].name;
      }
      known += ") nor of the form scenario:metric[:max|min]";
      return fail(std::move(known));
    }
    out.objective.scenario = text.substr(0, colon);
    std::string rest = text.substr(colon + 1);
    const std::size_t colon2 = rest.find(':');
    if (colon2 != std::string::npos) {
      const std::string dir = rest.substr(colon2 + 1);
      rest = rest.substr(0, colon2);
      if (dir == "max") {
        out.objective.maximize = true;
      } else if (dir == "min") {
        out.objective.maximize = false;
      } else {
        return fail("objective direction \"" + dir +
                    "\" must be \"max\" or \"min\"");
      }
    }
    if (rest.empty()) return fail("objective metric name is empty");
    out.objective.metric = rest;
  }

  const scenario::Scenario* sc = registry.find(out.objective.scenario);
  if (sc == nullptr) {
    return fail("unknown scenario \"" + out.objective.scenario + "\"");
  }
  const scenario::ScenarioSpec& spec = sc->spec();

  // Base params: defaults, then config sets, then user sets — every
  // knob validated against the spec before anything runs.
  out.objective.base = spec.defaults();
  for (const auto& kv : config_sets) {
    if (auto err = spec.apply_kv(kv, &out.objective.base)) {
      return fail("shipped config \"" + out.config_name + "\": " + *err);
    }
  }
  for (const auto& kv : set_texts) {
    if (auto err = spec.apply_kv(kv, &out.objective.base)) return fail(*err);
  }

  // Axes: config axes first, user axes override a config axis naming
  // the same parameter and append otherwise.
  std::vector<scenario::SweepAxis> axes;
  for (const auto& text : config_axes) {
    scenario::SweepAxis axis;
    if (auto err = scenario::parse_sweep_axis(spec, text, &axis)) {
      return fail("shipped config \"" + out.config_name + "\": " + *err);
    }
    axes.push_back(std::move(axis));
  }
  for (const auto& text : axis_texts) {
    scenario::SweepAxis axis;
    if (auto err = scenario::parse_sweep_axis(spec, text, &axis)) {
      return fail(*err);
    }
    bool replaced = false;
    for (auto& existing : axes) {
      if (existing.param == axis.param) {
        existing = axis;
        replaced = true;
        break;
      }
    }
    if (!replaced) axes.push_back(std::move(axis));
  }
  if (axes.empty()) {
    return fail("search needs at least one --axis k=lo:hi:step (or a "
                "shipped config that provides axes)");
  }
  out.axes = std::move(axes);
  return out;
}

}  // namespace leak::search
