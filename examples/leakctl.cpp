// leakctl — command-line front end over the scenario registry: every
// attack/leak experiment in the library is a named, parameterized,
// sweepable artifact, runnable without writing code.
//
//   leakctl list [--json|--names]
//   leakctl describe <scenario> [--json]
//   leakctl run <scenario> [--params FILE] [--faults FILE] [--set k=v]...
//               [--paths N] [--seed N] [--threads N] [--block N]
//               [--json PATH] [--csv PATH] [--quiet]
//   leakctl sweep <scenario> --sweep k=v1,v2,... [--sweep k=lo:hi:step]
//               [--faults FILE] [--set k=v]... [--vary-seed]
//               [--parallel-cells] [--json PATH] [--csv PATH] [--quiet]
//
// The serve command family runs sweeps as durable, resumable jobs
// (src/serve): cells are sharded across worker subprocesses and
// checkpointed one fsync'd record at a time into an append-only
// store, so a job survives kill -9 at any instant and resumes by
// re-running only the missing cells (docs/OPERATIONS.md):
//
//   leakctl submit <scenario> [--sweep ...] [--set ...] [--vary-seed]
//               [--workers N] [--max-retries N] [--jobs-dir DIR]
//   leakctl status [job] [--json] [--jobs-dir DIR]
//   leakctl resume <job> [--workers N] [--max-cells N] [--jobs-dir DIR]
//   leakctl results <job> [--json PATH] [--csv PATH] [--canonical]
//               [--jobs-dir DIR]
//   leakctl serve [--once] [--poll-ms N] [--jobs-dir DIR]
//
// PATH "-" writes to stdout.  `leakctl list --json` feeds
// tools/scenario_catalog.py, which generates the README "Scenario
// catalog" section (checked fresh in CI).  `--params FILE` replays an
// archived experiment: FILE is either a bare params JSON object or a
// full ScenarioResult report (its "params" member is used), as
// written by `--json`; later --set/--paths/... override on top.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/faults/schedule.hpp"
#include "src/scenario/registry.hpp"
#include "src/scenario/sweep.hpp"
#include "src/search/search.hpp"
#include "src/serve/job.hpp"
#include "src/serve/service.hpp"
#include "src/support/parse.hpp"
#include "src/support/report.hpp"

namespace {

using namespace leak;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <command> [args]\n"
      "  list [--json|--names]              enumerate scenarios\n"
      "  describe <scenario> [--json]       show one scenario's parameters\n"
      "  run <scenario> [options]           run one scenario\n"
      "  sweep <scenario> --sweep k=v1,v2,... [--sweep k=lo:hi:step] ...\n"
      "                                     grid/list parameter sweep\n"
      "  search <objective> [--axis k=lo:hi:step]... [options]\n"
      "                                     optimize adversary knobs; the\n"
      "                                     objective is a shipped config\n"
      "                                     name or scenario:metric[:max|"
      "min]\n"
      "  submit <scenario> [options]        submit a sweep as a durable job\n"
      "  status [job] [--json]              job progress (all jobs if none)\n"
      "  resume <job> [--max-cells N]       run/resume a job's missing "
      "cells\n"
      "  results <job> [--canonical]        merged result of a complete "
      "job\n"
      "  serve [--once] [--poll-ms N]       run every incomplete job\n"
      "options (run and sweep):\n"
      "  --set k=v        set a parameter (repeatable)\n"
      "  --paths N        shorthand for --set paths=N\n"
      "  --seed N         shorthand for --set seed=N\n"
      "  --threads N      shorthand for --set threads=N\n"
      "  --block N        shorthand for --set block=N\n"
      "  --faults FILE    load a fault-schedule JSON file (an ordered\n"
      "                   timeline of partition/latency/loss/outage\n"
      "                   events) and pass it inline as the scenario's\n"
      "                   `faults` parameter; also accepted by search\n"
      "                   and submit\n"
      "  --json PATH      write the JSON report to PATH (\"-\" = stdout)\n"
      "  --csv PATH       write the CSV (trial rows / sweep cells) to PATH\n"
      "  --quiet          suppress the human-readable report\n"
      "run-only options:\n"
      "  --params FILE    replay archived parameters (a params JSON\n"
      "                   object or a full --json report; --set wins)\n"
      "sweep-only options:\n"
      "  --vary-seed      per-cell seeds from (seed, cell index)\n"
      "  --parallel-cells fan cells across the thread pool\n"
      "search-only options:\n"
      "  --axis k=lo:hi:step  add a search axis; overrides a shipped\n"
      "                   config's axis over the same parameter\n"
      "  --budget N       distinct candidate evaluations, journal\n"
      "                   replays included (default per config: 48)\n"
      "  --patience N     failed unit-step passes before convergence "
      "(1)\n"
      "  --search-threads N  parallel candidate evaluations (0 = off)\n"
      "  --journal PATH   durable evaluation journal; a killed search\n"
      "                   resumes from it byte-identically\n"
      "  --out PATH       alias for --json\n"
      "  --boost-report   rerun the best strategy across an n_byzantine\n"
      "                   ladder with proposer boost off vs on\n"
      "  --boost-percent N  boost strength for the report (default 40)\n"
      "job options (submit/status/resume/results/serve):\n"
      "  --jobs-dir DIR   job store directory (default \"jobs\")\n"
      "  --workers N      worker subprocesses (submit default; resume\n"
      "                   override)\n"
      "  --max-retries N  per-cell retry budget on worker death (submit)\n"
      "  --max-cells N    stop a resume after N newly-executed cells\n"
      "  --canonical      zero wall-clock metadata in results output\n"
      "  --once           serve: one pass over incomplete jobs, then "
      "exit\n"
      "  --poll-ms N      serve: sleep between passes (default 1000)\n",
      argv0);
  return 2;
}

int fail(const std::string& msg) {
  std::fprintf(stderr, "leakctl: %s\n", msg.c_str());
  return 2;
}

/// Load a --faults schedule file and rewrite it as a
/// `faults=<compact JSON>` --set entry: the schedule travels inline in
/// the params, so sweep cells, serve jobs and search journals stay
/// self-contained and resume without the original file.
bool push_faults_set(const std::string& path,
                     std::vector<std::string>* sets, std::string* error) {
  try {
    sets->push_back("faults=" +
                    faults::FaultSchedule::load_file(path).dump());
  } catch (const std::invalid_argument& e) {
    *error = e.what();
    return false;
  }
  return true;
}

int cmd_list(const scenario::ScenarioRegistry& registry,
             const std::vector<std::string>& args) {
  const std::string mode = args.empty() ? "" : args.front();
  if (mode == "--json") {
    json::Value doc = json::Value::array();
    for (const auto* s : registry.all()) doc.push_back(s->spec().to_json());
    std::printf("%s\n", doc.dump(2).c_str());
    return 0;
  }
  if (mode == "--names") {
    for (const auto* s : registry.all()) {
      std::printf("%s\n", s->spec().name().c_str());
    }
    return 0;
  }
  if (!mode.empty()) return fail("unknown list option \"" + mode + "\"");
  Table t({"scenario", "params", "description"});
  for (const auto* s : registry.all()) {
    t.add_row({s->spec().name(), std::to_string(s->spec().params().size()),
               s->spec().description()});
  }
  std::printf("%s", t.to_string().c_str());
  return 0;
}

int cmd_describe(const scenario::Scenario& sc,
                 const std::vector<std::string>& args) {
  if (!args.empty() && args.front() == "--json") {
    std::printf("%s\n", sc.spec().to_json().dump(2).c_str());
    return 0;
  }
  if (!args.empty()) {
    return fail("unknown describe option \"" + args.front() + "\"");
  }
  std::printf("%s — %s\n\n", sc.spec().name().c_str(),
              sc.spec().description().c_str());
  Table t({"parameter", "type", "default", "constraints", "description"});
  for (const auto& p : sc.spec().params()) {
    std::string constraints;
    if (p.min_value) constraints += ">= " + Table::fmt_exact(*p.min_value);
    if (p.max_value) {
      if (!constraints.empty()) constraints += ", ";
      constraints += "<= " + Table::fmt_exact(*p.max_value);
    }
    if (!p.choices.empty()) {
      for (const auto& c : p.choices) {
        if (!constraints.empty()) constraints += "|";
        constraints += c;
      }
    }
    t.add_row({p.name, scenario::param_type_name(p.type),
               scenario::ParamSet::value_to_string(p.default_value),
               constraints, p.description});
  }
  std::printf("%s", t.to_string().c_str());
  return 0;
}

/// Options shared by run and sweep.
struct CliOptions {
  std::vector<std::string> sets;
  std::vector<std::string> sweeps;
  std::string params_path;  // empty = no archived-params replay
  std::string json_path;    // empty = no JSON output
  std::string csv_path;     // empty = no CSV output
  bool quiet = false;
  bool vary_seed = false;
  bool parallel_cells = false;
};

/// Parse the option tail; returns nullopt and prints usage on error.
bool parse_options(const std::vector<std::string>& args, bool allow_sweep,
                   CliOptions* out, std::string* error) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto need_value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        *error = std::string(flag) + " needs a value";
        return nullptr;
      }
      return &args[++i];
    };
    if (a == "--set") {
      const auto* v = need_value("--set");
      if (v == nullptr) return false;
      out->sets.push_back(*v);
    } else if (a == "--paths" || a == "--seed" || a == "--threads" ||
               a == "--block") {
      const auto* v = need_value(a.c_str());
      if (v == nullptr) return false;
      out->sets.push_back(a.substr(2) + "=" + *v);
    } else if (a == "--faults") {
      const auto* v = need_value("--faults");
      if (v == nullptr) return false;
      if (!push_faults_set(*v, &out->sets, error)) return false;
    } else if (a == "--params" && !allow_sweep) {
      const auto* v = need_value("--params");
      if (v == nullptr) return false;
      out->params_path = *v;
    } else if (a == "--sweep" && allow_sweep) {
      const auto* v = need_value("--sweep");
      if (v == nullptr) return false;
      out->sweeps.push_back(*v);
    } else if (a == "--json") {
      const auto* v = need_value("--json");
      if (v == nullptr) return false;
      out->json_path = *v;
    } else if (a == "--csv") {
      const auto* v = need_value("--csv");
      if (v == nullptr) return false;
      out->csv_path = *v;
    } else if (a == "--quiet") {
      out->quiet = true;
    } else if (a == "--vary-seed" && allow_sweep) {
      out->vary_seed = true;
    } else if (a == "--parallel-cells" && allow_sweep) {
      out->parallel_cells = true;
    } else {
      *error = "unknown option \"" + a + "\"";
      return false;
    }
  }
  return true;
}

int emit_artifacts(const json::Value& doc, const std::string& csv,
                   const CliOptions& opts) {
  if (!opts.json_path.empty()) {
    if (!reporting::write_json(doc, opts.json_path)) {
      return fail("cannot write " + opts.json_path);
    }
    if (opts.json_path != "-") {
      std::printf("(wrote %s)\n", opts.json_path.c_str());
    }
  }
  if (!opts.csv_path.empty()) {
    if (!reporting::write_text(csv, opts.csv_path)) {
      return fail("cannot write " + opts.csv_path);
    }
    if (opts.csv_path != "-") {
      std::printf("(wrote %s)\n", opts.csv_path.c_str());
    }
  }
  return 0;
}

/// Load the --params replay file into a ParamSet validated against the
/// scenario's spec.  Accepts either a bare params JSON object or a
/// full ScenarioResult report, whose "params" member is then used.
std::optional<scenario::ParamSet> load_params_file(
    const scenario::Scenario& sc, const std::string& path,
    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot read " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto doc = json::Value::parse(buf.str());
  if (!doc) {
    *error = path + ": not valid JSON";
    return std::nullopt;
  }
  // Archives produced by sweeps carry an "axes" member.  Validate it
  // against this scenario's spec even though a plain `run` replay only
  // uses the params: a grid axis naming a parameter the scenario does
  // not declare means the file belongs to a different experiment, and
  // silently replaying its base params would misattribute results.
  if (doc->is_object() && doc->find("axes") != nullptr) {
    std::string axes_error;
    if (!scenario::axes_from_json(sc.spec(), *doc->find("axes"),
                                  &axes_error)) {
      *error = path + ": " + axes_error;
      return std::nullopt;
    }
  }
  const json::Value* params = &*doc;
  if (doc->is_object() && doc->find("params") != nullptr &&
      doc->find("params")->is_object()) {
    // A full report: replay the scenario it recorded (guard against
    // replaying another scenario's archive under the wrong name).
    const json::Value* name = doc->find("scenario");
    if (name != nullptr && name->is_string() &&
        name->as_string() != sc.spec().name()) {
      *error = path + ": archived scenario \"" + name->as_string() +
               "\" does not match \"" + sc.spec().name() + "\"";
      return std::nullopt;
    }
    params = doc->find("params");
  }
  std::string parse_error;
  auto set = sc.spec().params_from_json(*params, &parse_error);
  if (!set) {
    *error = path + ": " + parse_error;
    return std::nullopt;
  }
  return set;
}

int cmd_run(const scenario::Scenario& sc,
            const std::vector<std::string>& args) {
  CliOptions opts;
  std::string error;
  if (!parse_options(args, /*allow_sweep=*/false, &opts, &error)) {
    return fail(error);
  }
  scenario::ParamSet params = sc.spec().defaults();
  if (!opts.params_path.empty()) {
    auto replayed = load_params_file(sc, opts.params_path, &error);
    if (!replayed) return fail(error);
    params = std::move(*replayed);
  }
  for (const auto& kv : opts.sets) {
    if (auto err = sc.spec().apply_kv(kv, &params)) return fail(*err);
  }
  scenario::ScenarioResult result;
  try {
    result = sc.run(params);
  } catch (const std::invalid_argument& e) {
    return fail(e.what());
  }
  if (!opts.quiet) std::printf("%s", result.to_text().c_str());
  return emit_artifacts(result.to_json(), result.trials_to_csv(), opts);
}

int cmd_sweep(const scenario::Scenario& sc,
              const std::vector<std::string>& args) {
  CliOptions opts;
  std::string error;
  if (!parse_options(args, /*allow_sweep=*/true, &opts, &error)) {
    return fail(error);
  }
  if (opts.sweeps.empty()) {
    return fail("sweep needs at least one --sweep k=v1,v2,...");
  }
  scenario::ParamSet base = sc.spec().defaults();
  for (const auto& kv : opts.sets) {
    if (auto err = sc.spec().apply_kv(kv, &base)) return fail(*err);
  }
  std::vector<scenario::SweepAxis> axes;
  for (const auto& text : opts.sweeps) {
    scenario::SweepAxis axis;
    if (auto err = scenario::parse_sweep_axis(sc.spec(), text, &axis)) {
      return fail(*err);
    }
    axes.push_back(std::move(axis));
  }
  scenario::SweepConfig config;
  config.vary_seed = opts.vary_seed;
  config.parallel_cells = opts.parallel_cells;
  // With --parallel-cells the pool size comes from the threads
  // parameter (cells themselves are pinned to one inner thread).
  config.threads = static_cast<unsigned>(base.get_int("threads"));
  scenario::SweepResult result;
  try {
    result = scenario::run_sweep(sc, base, std::move(axes), config);
  } catch (const std::invalid_argument& e) {
    return fail(e.what());
  }
  if (!opts.quiet) std::printf("%s", result.to_text().c_str());
  return emit_artifacts(result.to_json(), result.to_csv(), opts);
}

// --- search command (src/search) -------------------------------------

struct SearchCliOptions {
  std::string objective;
  std::vector<std::string> axes;
  std::vector<std::string> sets;
  std::string journal_path;
  std::string json_path;
  std::string csv_path;
  std::size_t budget = 0;  // 0 = the resolved config's default
  std::size_t patience = 1;
  unsigned threads = 0;
  unsigned boost_percent = 40;
  bool boost_report = false;
  bool quiet = false;
};

bool parse_search_options(const std::vector<std::string>& args,
                          SearchCliOptions* out, std::string* error) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto need_value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        *error = std::string(flag) + " needs a value";
        return nullptr;
      }
      return &args[++i];
    };
    const auto need_count = [&](const char* flag, auto* slot) {
      const auto* v = need_value(flag);
      if (v == nullptr) return false;
      const auto parsed = parse::u64(*v);
      if (!parsed) {
        *error = std::string(flag) + " needs a non-negative integer";
        return false;
      }
      *slot = static_cast<std::remove_pointer_t<decltype(slot)>>(*parsed);
      return true;
    };
    if (a == "--axis") {
      const auto* v = need_value("--axis");
      if (v == nullptr) return false;
      out->axes.push_back(*v);
    } else if (a == "--set") {
      const auto* v = need_value("--set");
      if (v == nullptr) return false;
      out->sets.push_back(*v);
    } else if (a == "--paths" || a == "--seed" || a == "--threads" ||
               a == "--block") {
      const auto* v = need_value(a.c_str());
      if (v == nullptr) return false;
      out->sets.push_back(a.substr(2) + "=" + *v);
    } else if (a == "--faults") {
      const auto* v = need_value("--faults");
      if (v == nullptr) return false;
      if (!push_faults_set(*v, &out->sets, error)) return false;
    } else if (a == "--budget") {
      if (!need_count("--budget", &out->budget)) return false;
    } else if (a == "--patience") {
      if (!need_count("--patience", &out->patience)) return false;
    } else if (a == "--search-threads") {
      if (!need_count("--search-threads", &out->threads)) return false;
    } else if (a == "--boost-percent") {
      if (!need_count("--boost-percent", &out->boost_percent)) return false;
    } else if (a == "--boost-report") {
      out->boost_report = true;
    } else if (a == "--journal") {
      const auto* v = need_value("--journal");
      if (v == nullptr) return false;
      out->journal_path = *v;
    } else if (a == "--json" || a == "--out") {
      const auto* v = need_value(a.c_str());
      if (v == nullptr) return false;
      out->json_path = *v;
    } else if (a == "--csv") {
      const auto* v = need_value("--csv");
      if (v == nullptr) return false;
      out->csv_path = *v;
    } else if (a == "--quiet") {
      out->quiet = true;
    } else if (!a.empty() && a[0] == '-') {
      *error = "unknown option \"" + a + "\"";
      return false;
    } else if (out->objective.empty()) {
      out->objective = a;
    } else {
      *error = "unexpected argument \"" + a + "\"";
      return false;
    }
  }
  return true;
}

int cmd_search(const scenario::ScenarioRegistry& registry,
               const std::vector<std::string>& args) {
  SearchCliOptions opts;
  std::string error;
  if (!parse_search_options(args, &opts, &error)) return fail(error);
  if (opts.objective.empty()) {
    std::string msg = "search needs an objective (shipped configs:";
    for (const auto& c : search::builtin_search_configs()) {
      msg += " " + c.name;
    }
    msg += "; or scenario:metric[:max|min])";
    return fail(msg);
  }
  // Resolve and validate every knob before anything runs.
  const auto resolved = search::resolve_search(registry, opts.objective,
                                               opts.axes, opts.sets, &error);
  if (!resolved) return fail(error);
  const scenario::Scenario* sc = registry.find(resolved->objective.scenario);
  if (sc == nullptr) {
    return fail("unknown scenario \"" + resolved->objective.scenario + "\"");
  }
  search::SearchOptions search_opts;
  search_opts.budget = opts.budget != 0 ? opts.budget : resolved->budget;
  search_opts.patience = opts.patience;
  search_opts.threads = opts.threads;
  search_opts.journal_path = opts.journal_path;
  search::SearchResult result;
  try {
    result = search::run_search(*sc, resolved->objective, resolved->axes,
                                search_opts);
  } catch (const std::invalid_argument& e) {
    return fail(e.what());
  } catch (const std::runtime_error& e) {
    return fail(e.what());
  }
  if (!opts.quiet) std::printf("%s", result.to_text().c_str());
  json::Value doc = result.to_json();
  if (opts.boost_report) {
    if (result.scenario != "balancing-attack") {
      return fail("--boost-report needs the balancing-attack scenario "
                  "(objective \"" + opts.objective + "\" searches " +
                  result.scenario + ")");
    }
    // The rungs climb the adversary committee share around the paper's
    // operating point; stake = n_byzantine / (n_byzantine + n_honest).
    const std::vector<std::int64_t> ladder{4, 5, 6, 7, 8, 9, 10};
    std::string text;
    json::Value report;
    try {
      report = search::boost_report(*sc, result.best_params, ladder,
                                    opts.boost_percent, &text);
    } catch (const std::invalid_argument& e) {
      return fail(e.what());
    }
    if (!opts.quiet) std::printf("\n%s", text.c_str());
    doc.set("boost_report", std::move(report));
  }
  CliOptions emit;
  emit.json_path = opts.json_path;
  emit.csv_path = opts.csv_path;
  return emit_artifacts(doc, result.history_to_csv(), emit);
}

// --- serve command family (src/serve) --------------------------------

/// Options shared by submit/status/resume/results/serve.
struct JobCliOptions {
  std::vector<std::string> sets;
  std::vector<std::string> sweeps;
  std::string params_path;
  std::string jobs_dir = "jobs";
  std::string json_path;
  std::string csv_path;
  bool vary_seed = false;
  bool canonical = false;
  bool as_json = false;  // --json with no PATH (status)
  bool once = false;
  bool quiet = false;
  unsigned workers = 0;
  unsigned max_retries = 0;
  std::size_t max_cells = 0;
  unsigned poll_ms = 1000;
  std::vector<std::string> positional;
};

bool parse_job_options(const std::vector<std::string>& args,
                       bool json_is_flag, JobCliOptions* out,
                       std::string* error) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto need_value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        *error = std::string(flag) + " needs a value";
        return nullptr;
      }
      return &args[++i];
    };
    const auto need_count = [&](const char* flag,
                                auto* slot) {
      const auto* v = need_value(flag);
      if (v == nullptr) return false;
      const auto parsed = parse::u64(*v);
      if (!parsed) {
        *error = std::string(flag) + " needs a non-negative integer";
        return false;
      }
      *slot = static_cast<std::remove_pointer_t<decltype(slot)>>(*parsed);
      return true;
    };
    if (a == "--set") {
      const auto* v = need_value("--set");
      if (v == nullptr) return false;
      out->sets.push_back(*v);
    } else if (a == "--paths" || a == "--seed" || a == "--threads" ||
               a == "--block") {
      const auto* v = need_value(a.c_str());
      if (v == nullptr) return false;
      out->sets.push_back(a.substr(2) + "=" + *v);
    } else if (a == "--faults") {
      const auto* v = need_value("--faults");
      if (v == nullptr) return false;
      if (!push_faults_set(*v, &out->sets, error)) return false;
    } else if (a == "--sweep") {
      const auto* v = need_value("--sweep");
      if (v == nullptr) return false;
      out->sweeps.push_back(*v);
    } else if (a == "--params") {
      const auto* v = need_value("--params");
      if (v == nullptr) return false;
      out->params_path = *v;
    } else if (a == "--jobs-dir") {
      const auto* v = need_value("--jobs-dir");
      if (v == nullptr) return false;
      out->jobs_dir = *v;
    } else if (a == "--json" && json_is_flag) {
      out->as_json = true;
    } else if (a == "--json") {
      const auto* v = need_value("--json");
      if (v == nullptr) return false;
      out->json_path = *v;
    } else if (a == "--csv") {
      const auto* v = need_value("--csv");
      if (v == nullptr) return false;
      out->csv_path = *v;
    } else if (a == "--vary-seed") {
      out->vary_seed = true;
    } else if (a == "--canonical") {
      out->canonical = true;
    } else if (a == "--once") {
      out->once = true;
    } else if (a == "--quiet") {
      out->quiet = true;
    } else if (a == "--workers") {
      if (!need_count("--workers", &out->workers)) return false;
    } else if (a == "--max-retries") {
      if (!need_count("--max-retries", &out->max_retries)) return false;
    } else if (a == "--max-cells") {
      if (!need_count("--max-cells", &out->max_cells)) return false;
    } else if (a == "--poll-ms") {
      if (!need_count("--poll-ms", &out->poll_ms)) return false;
    } else if (!a.empty() && a[0] == '-') {
      *error = "unknown option \"" + a + "\"";
      return false;
    } else {
      out->positional.push_back(a);
    }
  }
  return true;
}

void print_status(const serve::JobStatus& st) {
  std::printf("%s  %-24s %4zu/%-4zu cells  %s\n", st.id.c_str(),
              st.scenario.c_str(), st.done_cells, st.total_cells,
              st.merged ? "merged" : "incomplete");
}

json::Value status_to_json(const serve::JobStatus& st) {
  json::Value doc = json::Value::object();
  doc.set("id", st.id);
  doc.set("scenario", st.scenario);
  doc.set("total_cells", static_cast<std::int64_t>(st.total_cells));
  doc.set("done_cells", static_cast<std::int64_t>(st.done_cells));
  doc.set("merged", st.merged);
  return doc;
}

int cmd_submit(const scenario::ScenarioRegistry& registry,
               const scenario::Scenario& sc,
               const std::vector<std::string>& args) {
  JobCliOptions opts;
  std::string error;
  if (!parse_job_options(args, /*json_is_flag=*/false, &opts, &error)) {
    return fail(error);
  }
  if (!opts.positional.empty()) {
    return fail("unexpected argument \"" + opts.positional.front() + "\"");
  }
  serve::JobSpec job;
  job.scenario = sc.spec().name();
  job.base = sc.spec().defaults();
  if (!opts.params_path.empty()) {
    auto replayed = load_params_file(sc, opts.params_path, &error);
    if (!replayed) return fail(error);
    job.base = std::move(*replayed);
  }
  for (const auto& kv : opts.sets) {
    if (auto err = sc.spec().apply_kv(kv, &job.base)) return fail(*err);
  }
  for (const auto& text : opts.sweeps) {
    scenario::SweepAxis axis;
    if (auto err = scenario::parse_sweep_axis(sc.spec(), text, &axis)) {
      return fail(*err);
    }
    job.axes.push_back(std::move(axis));
  }
  job.config.vary_seed = opts.vary_seed;
  if (opts.workers != 0) job.config.workers = opts.workers;
  if (opts.max_retries != 0) job.config.max_retries = opts.max_retries;
  serve::JobService service(registry, opts.jobs_dir);
  const auto id = service.submit(job, &error);
  if (!id) return fail(error);
  std::printf("submitted %s (%zu cells)\n  manifest: %s/manifest.json\n",
              id->c_str(), job.cell_count(),
              service.job_dir(*id).c_str());
  return 0;
}

int cmd_status(const scenario::ScenarioRegistry& registry,
               const std::vector<std::string>& args) {
  JobCliOptions opts;
  std::string error;
  if (!parse_job_options(args, /*json_is_flag=*/true, &opts, &error)) {
    return fail(error);
  }
  serve::JobService service(registry, opts.jobs_dir);
  if (opts.positional.size() > 1) return fail("status takes one job id");
  if (opts.positional.size() == 1) {
    auto st = service.status(opts.positional.front(), &error);
    if (!st) return fail(error);
    if (opts.as_json) {
      std::printf("%s\n", status_to_json(*st).dump(2).c_str());
    } else {
      print_status(*st);
    }
    return 0;
  }
  const auto jobs = service.list(&error);
  if (opts.as_json) {
    json::Value doc = json::Value::array();
    for (const auto& st : jobs) doc.push_back(status_to_json(st));
    std::printf("%s\n", doc.dump(2).c_str());
    return 0;
  }
  if (jobs.empty()) {
    std::printf("no jobs in %s\n", opts.jobs_dir.c_str());
    return 0;
  }
  for (const auto& st : jobs) print_status(st);
  return 0;
}

int run_one_job(serve::JobService& service, const std::string& id,
                const JobCliOptions& opts, std::string* error) {
  serve::RunOptions run_opts;
  run_opts.workers = opts.workers;
  run_opts.max_retries = opts.max_retries;
  run_opts.max_cells = opts.max_cells;
  const auto stats = service.run(id, run_opts, error);
  if (!stats) return 2;
  if (!opts.quiet) {
    std::printf(
        "%s: %zu cells, %zu already done, %zu executed"
        " (%zu worker respawns)%s\n",
        id.c_str(), stats->total_cells, stats->already_done,
        stats->executed, stats->respawns,
        stats->completed ? ", merged" : "");
  }
  if (!error->empty()) {
    // Non-fatal completion note (e.g. deterministic cell failures).
    std::fprintf(stderr, "leakctl: %s: %s\n", id.c_str(), error->c_str());
    error->clear();
  }
  return 0;
}

int cmd_resume(const scenario::ScenarioRegistry& registry,
               const std::vector<std::string>& args) {
  JobCliOptions opts;
  std::string error;
  if (!parse_job_options(args, /*json_is_flag=*/false, &opts, &error)) {
    return fail(error);
  }
  if (opts.positional.size() != 1) return fail("resume needs one job id");
  serve::JobService service(registry, opts.jobs_dir);
  const int rc =
      run_one_job(service, opts.positional.front(), opts, &error);
  if (rc != 0) return fail(error);
  return 0;
}

int cmd_results(const scenario::ScenarioRegistry& registry,
                const std::vector<std::string>& args) {
  JobCliOptions opts;
  std::string error;
  if (!parse_job_options(args, /*json_is_flag=*/false, &opts, &error)) {
    return fail(error);
  }
  if (opts.positional.size() != 1) return fail("results needs one job id");
  serve::JobService service(registry, opts.jobs_dir);
  const auto merged =
      service.merged(opts.positional.front(), opts.canonical, &error);
  if (!merged) return fail(error);
  if (opts.json_path.empty() && opts.csv_path.empty()) {
    std::printf("%s\n", merged->dump(2).c_str());
    return 0;
  }
  CliOptions emit;
  emit.json_path = opts.json_path;
  emit.csv_path = opts.csv_path;
  return emit_artifacts(*merged, serve::JobService::merged_to_csv(*merged),
                        emit);
}

int cmd_serve(const scenario::ScenarioRegistry& registry,
              const std::vector<std::string>& args) {
  JobCliOptions opts;
  std::string error;
  if (!parse_job_options(args, /*json_is_flag=*/false, &opts, &error)) {
    return fail(error);
  }
  if (!opts.positional.empty()) {
    return fail("unexpected argument \"" + opts.positional.front() + "\"");
  }
  serve::JobService service(registry, opts.jobs_dir);
  for (;;) {
    const auto jobs = service.list(&error);
    for (const auto& st : jobs) {
      if (st.merged) continue;
      if (run_one_job(service, st.id, opts, &error) != 0) {
        std::fprintf(stderr, "leakctl: %s: %s\n", st.id.c_str(),
                     error.c_str());
        error.clear();
      }
    }
    if (opts.once) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(opts.poll_ms));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  const auto& registry = scenario::builtin_registry();

  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);

  if (cmd == "list") return cmd_list(registry, args);
  if (cmd == "search") return cmd_search(registry, args);
  if (cmd == "status") return cmd_status(registry, args);
  if (cmd == "resume") return cmd_resume(registry, args);
  if (cmd == "results") return cmd_results(registry, args);
  if (cmd == "serve") return cmd_serve(registry, args);
  if (cmd != "describe" && cmd != "run" && cmd != "sweep" &&
      cmd != "submit") {
    return usage(argv[0]);
  }
  if (args.empty()) return fail(cmd + " needs a scenario name");
  const std::string name = args.front();
  args.erase(args.begin());
  const scenario::Scenario* sc = registry.find(name);
  if (sc == nullptr) {
    return fail("unknown scenario \"" + name +
                "\" (try: " + std::string(argv[0]) + " list)");
  }
  if (cmd == "describe") return cmd_describe(*sc, args);
  if (cmd == "run") return cmd_run(*sc, args);
  if (cmd == "submit") return cmd_submit(registry, *sc, args);
  return cmd_sweep(*sc, args);
}
