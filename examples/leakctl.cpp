// leakctl — command-line front end over the whole library: regenerate
// any paper artifact, query the analytic models, or run a scenario,
// without writing code.
//
//   leakctl table1|table2|table3          reproduce a paper table
//   leakctl stake <behavior> <epoch>      stake closed form (Fig 2)
//   leakctl ratio <p0> <epoch>            active ratio (Fig 3 / Eq 5)
//   leakctl conflict <strategy> <beta0> [p0]
//                                         time to conflicting finalization
//   leakctl region [p0]                   Fig 7 bound for beta > 1/3
//   leakctl bounce <beta0> <epoch>        Eq 24 probability (Fig 10)
//   leakctl gst                           Section 5.1 safety bound
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/analytic/solvers.hpp"
#include "src/analytic/tables.hpp"
#include "src/bouncing/distribution.hpp"
#include "src/support/table.hpp"

namespace {

using namespace leak;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <command> [args]\n"
      "  table1 | table2 | table3\n"
      "  stake <active|semi|inactive> <epoch>\n"
      "  ratio <p0> <epoch>\n"
      "  conflict <honest|slashable|semiactive> <beta0> [p0=0.5]\n"
      "  region [p0=0.5]\n"
      "  bounce <beta0> <epoch>\n"
      "  gst\n",
      argv0);
  return 2;
}

int cmd_tables(const std::string& which) {
  const auto cfg = analytic::AnalyticConfig::paper();
  if (which == "table1") {
    Table t({"scenario", "outcome", "witness", "value"});
    for (const auto& r : analytic::table1(cfg)) {
      t.add_row({r.id, r.outcome, r.witness_label,
                 Table::fmt(r.witness, 4)});
    }
    std::printf("%s", t.to_string().c_str());
    return 0;
  }
  const auto rows =
      which == "table2" ? analytic::table2(cfg) : analytic::table3(cfg);
  Table t({"beta0", "paper", "computed"});
  for (const auto& r : rows) {
    t.add_row({Table::fmt(r.beta0, 2), Table::fmt(r.paper_epochs, 0),
               Table::fmt(r.computed_epochs, 1)});
  }
  std::printf("%s", t.to_string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  const auto cfg = analytic::AnalyticConfig::paper();

  if (cmd == "table1" || cmd == "table2" || cmd == "table3") {
    return cmd_tables(cmd);
  }
  if (cmd == "stake" && argc >= 4) {
    const std::string b = argv[2];
    const double t = std::atof(argv[3]);
    analytic::Behavior behavior = analytic::Behavior::kInactive;
    if (b == "active") behavior = analytic::Behavior::kActive;
    else if (b == "semi") behavior = analytic::Behavior::kSemiActive;
    else if (b != "inactive") return usage(argv[0]);
    std::printf("stake(%s, t=%.0f) = %.4f ETH (ejection at %.0f)\n",
                b.c_str(), t,
                analytic::stake_with_ejection(behavior, t, cfg),
                analytic::ejection_epoch(behavior, cfg));
    return 0;
  }
  if (cmd == "ratio" && argc >= 4) {
    const double p0 = std::atof(argv[2]);
    const double t = std::atof(argv[3]);
    std::printf("active ratio(p0=%.2f, t=%.0f) = %.4f (2/3 at t=%.0f)\n",
                p0, t, analytic::active_ratio_honest(t, p0, cfg),
                analytic::time_to_supermajority_honest(p0, cfg));
    return 0;
  }
  if (cmd == "conflict" && argc >= 4) {
    const std::string s = argv[2];
    const double beta0 = std::atof(argv[3]);
    const double p0 = argc >= 5 ? std::atof(argv[4]) : 0.5;
    analytic::ByzantineStrategy strat = analytic::ByzantineStrategy::kNone;
    if (s == "slashable") strat = analytic::ByzantineStrategy::kSlashable;
    else if (s == "semiactive") {
      strat = analytic::ByzantineStrategy::kSemiActive;
    } else if (s != "honest") {
      return usage(argv[0]);
    }
    const double t =
        analytic::conflicting_finalization_epoch(p0, beta0, strat, cfg);
    std::printf("conflicting finalization (%s, beta0=%.2f, p0=%.2f): "
                "%.0f epochs (~%.1f days)\n",
                s.c_str(), beta0, p0, t, t * 6.4 / 60.0 / 24.0);
    return 0;
  }
  if (cmd == "region") {
    const double p0 = argc >= 3 ? std::atof(argv[2]) : 0.5;
    std::printf("min beta0 for beta > 1/3 on both branches at p0=%.2f: "
                "%.4f (branch 1 alone: %.4f)\n",
                p0,
                std::max(analytic::beta0_lower_bound(p0, cfg),
                         analytic::beta0_lower_bound(1.0 - p0, cfg)),
                analytic::beta0_lower_bound(p0, cfg));
    return 0;
  }
  if (cmd == "bounce" && argc >= 4) {
    const double beta0 = std::atof(argv[2]);
    const double t = std::atof(argv[3]);
    bouncing::StakeLaw law(0.5, cfg);
    std::printf("P[beta > 1/3 | bouncing, beta0=%.4f, t=%.0f] = %.4f "
                "(both branches: %.4f)\n",
                beta0, t,
                bouncing::prob_beta_exceeds_third(t, beta0, law, cfg),
                bouncing::prob_beta_exceeds_third_either_branch(t, beta0,
                                                                law, cfg));
    return 0;
  }
  if (cmd == "gst") {
    std::printf("GST safety upper bound (honest only): %.0f epochs "
                "(~%.1f days)\n",
                analytic::gst_safety_upper_bound(cfg),
                analytic::gst_safety_upper_bound(cfg) * 6.4 / 60.0 / 24.0);
    return 0;
  }
  return usage(argv[0]);
}
