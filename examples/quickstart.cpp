// Quickstart: the library in ~40 lines.
//
// Computes the three stake trajectories of Figure 2, the GST safety
// upper bound of Section 5.1, and the Table 2 speedups, using only the
// public analytic API.
//
//   ./quickstart
#include <cstdio>

#include "src/analytic/solvers.hpp"
#include "src/analytic/stake_model.hpp"

int main() {
  using namespace leak::analytic;
  const AnalyticConfig cfg = AnalyticConfig::paper();

  std::printf("Ethereum PoS inactivity-leak analysis (paper config)\n\n");

  std::printf("stake after t epochs of leak (ETH):\n");
  std::printf("%8s %10s %12s %10s\n", "epoch", "active", "semi-active",
              "inactive");
  for (double t = 0.0; t <= 5000.0; t += 1000.0) {
    std::printf("%8.0f %10.3f %12.3f %10.3f\n", t,
                stake_with_ejection(Behavior::kActive, t, cfg),
                stake_with_ejection(Behavior::kSemiActive, t, cfg),
                stake_with_ejection(Behavior::kInactive, t, cfg));
  }

  std::printf("\nejection epochs: inactive %.0f, semi-active %.0f\n",
              ejection_epoch(Behavior::kInactive, cfg),
              ejection_epoch(Behavior::kSemiActive, cfg));

  std::printf("\nGST safety upper bound (honest only): %.0f epochs (~3 weeks)\n",
              gst_safety_upper_bound(cfg));

  std::printf("\nepochs to conflicting finalization (p0 = 0.5):\n");
  std::printf("%8s %16s %20s\n", "beta0", "slashable", "non-slashable");
  for (double b0 : {0.0, 0.1, 0.2, 0.33}) {
    std::printf("%8.2f %16.0f %20.0f\n", b0,
                conflicting_finalization_epoch(
                    0.5, b0, ByzantineStrategy::kSlashable, cfg),
                conflicting_finalization_epoch(
                    0.5, b0, ByzantineStrategy::kSemiActive, cfg));
  }

  std::printf("\nminimum beta0 for beta > 1/3 on both branches: %.4f\n",
              beta0_lower_bound(0.5, cfg));
  return 0;
}
