// Fleet-reliability study (mixed-population model).
//
// The paper's classes are idealized: fully active, semi-active or
// silent.  Real validator fleets miss a few percent of duties.  This
// example uses the Population API to ask an operational question: when
// a partition splits the network, how do realistic miss rates change
// (a) the time for the majority side to regain finality and (b) the
// Byzantine head-room before the 1/3 threshold?
//
//   ./fleet_reliability [miss_rate] [p0]     (defaults: 0.05, 0.55)
#include <cstdio>
#include <cstdlib>

#include "src/analytic/population.hpp"
#include "src/analytic/solvers.hpp"

int main(int argc, char** argv) {
  using namespace leak::analytic;
  const double miss = argc > 1 ? std::atof(argv[1]) : 0.05;
  const double p0 = argc > 2 ? std::atof(argv[2]) : 0.55;
  const AnalyticConfig cfg = AnalyticConfig::paper();

  // A validator missing a fraction `miss` of its duties accrues score
  // at slope miss*(bias + decrement) on average (+4 when missed, -1
  // when not, floored in practice; the linear mean is a good model for
  // small miss rates).
  const double flaky_slope = miss * (cfg.score_bias +
                                     cfg.score_active_decrement);

  std::printf("fleet reliability study: miss rate %.1f%%, honest split "
              "p0=%.2f\n\n", miss * 100.0, p0);

  std::printf("%-28s %-18s %-14s\n", "branch population",
              "2/3 regained at", "epochs vs ideal");
  const auto ideal = make_honest_partition_population(p0, cfg);
  const double t_ideal = ideal.supermajority_epoch();
  {
    Population flaky(
        {
            {"active-but-flaky", p0, flaky_slope, true},
            {"partitioned-away", 1.0 - p0, cfg.score_bias, false},
        },
        cfg);
    const double t = flaky.supermajority_epoch();
    std::printf("%-28s %-18.0f %+.0f\n", "ideal actives", t_ideal, 0.0);
    std::printf("%-28s %-18.0f %+.0f\n", "flaky actives", t, t - t_ideal);
  }

  std::printf("\nByzantine head-room (semi-active adversary, even split):\n");
  std::printf("%8s %24s %24s\n", "beta0", "peak beta (ideal honest)",
              "peak beta (flaky honest)");
  for (double b0 : {0.20, 0.2421, 0.28}) {
    const auto ideal_pop = make_semiactive_population(0.5, b0, cfg);
    Population flaky_pop(
        {
            {"honest-active", 0.5 * (1.0 - b0), flaky_slope, true},
            {"byzantine", b0,
             (cfg.score_bias - cfg.score_active_decrement) / 2.0, true},
            {"honest-inactive", 0.5 * (1.0 - b0), cfg.score_bias, false},
        },
        cfg);
    std::printf("%8.4f %24.4f %24.4f\n", b0,
                ideal_pop.peak_proportion(1).value,
                flaky_pop.peak_proportion(1).value);
  }
  std::printf(
      "\n=> honest unreliability weakens the network on both fronts: the\n"
      "   majority branch recovers later, and the same Byzantine stake\n"
      "   peaks at a higher proportion (flaky honest stake also bleeds).\n");
  return 0;
}
