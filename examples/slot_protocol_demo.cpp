// Full protocol walkthrough at slot granularity.
//
// Drives the complete stack — discrete-event network with a two-region
// partition, block proposals, LMD-GHOST fork choice, FFG justification
// and finalization, the inactivity-leak trigger, Byzantine equivocation
// and post-GST slashing — over a partition-and-heal episode, narrating
// what every subsystem sees.
//
//   ./slot_protocol_demo [gst_epoch] [n_byzantine]  (defaults: 5, 2)
#include <cstdio>
#include <cstdlib>

#include "src/sim/slot_sim.hpp"

int main(int argc, char** argv) {
  using namespace leak;
  const double gst_epoch = argc > 1 ? std::atof(argv[1]) : 5.0;
  const auto n_byz =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 2u;

  sim::SlotSimConfig cfg;
  cfg.n_honest = 30;
  cfg.n_byzantine = n_byz;
  cfg.epochs = 12;
  cfg.p0 = 0.5;
  cfg.gst_epoch = gst_epoch;

  std::printf("slot-level protocol run: %u honest + %u byzantine, "
              "partition heals at epoch %.0f, %zu epochs total\n\n",
              cfg.n_honest, cfg.n_byzantine, gst_epoch, cfg.epochs);

  const auto r = sim::SlotSim(cfg).run();

  std::printf("messages delivered: %llu\n",
              static_cast<unsigned long long>(r.messages_delivered));
  std::printf("blocks in validator 0's tree: %zu (of %zu slots)\n",
              r.blocks_seen, cfg.epochs * 32);
  std::printf("inactivity leak observed: %s\n",
              r.leak_observed ? "yes" : "no");

  std::printf("\nfinal views (validator: justified / finalized epoch):\n");
  for (std::uint32_t i = 0; i < cfg.n_honest + cfg.n_byzantine; ++i) {
    if (i < 4 || i + 4 >= cfg.n_honest + cfg.n_byzantine ||
        (i >= cfg.n_honest)) {
      std::printf("  v%-3u %s: justified %llu, finalized %llu\n", i,
                  i >= cfg.n_honest ? "(byz)" : "     ",
                  static_cast<unsigned long long>(r.justified_epoch[i]),
                  static_cast<unsigned long long>(r.finalized_epoch[i]));
    }
  }

  std::printf("\nslashings: %zu\n", r.slashed.size());
  for (const auto v : r.slashed) {
    std::printf("  validator %u slashed (double vote across branches)\n",
                v.value());
  }
  std::printf("safety violations (conflicting finalization): %zu\n",
              r.safety_violations);

  if (gst_epoch > 0 && r.slashed.size() == n_byz) {
    std::printf("\n=> the Section 5.2.1 strategy is punished once the\n"
                "   partition heals and equivocations propagate; the harm\n"
                "   it could do before GST is the subject of Table 2.\n");
  }
  return 0;
}
