// Partition-attack explorer (Sections 5.1 and 5.2).
//
// Runs the epoch-granular partition simulator for a chosen Byzantine
// strategy and stake proportion, printing the timeline of the leak:
// active-stake ratios, Byzantine proportion, ejections, supermajority
// recovery and the epoch Safety is lost, next to the closed-form
// predictions.
//
//   ./partition_attack [strategy] [beta0] [p0] [threads] [branches]
//                      [heal_epoch] [heal_stagger]
//     strategy:     honest|slashable|semiactive|overthrow (default: slashable)
//     beta0:        Byzantine stake proportion                  (default: 0.2)
//     p0:           honest proportion on branch 1               (default: 0.5)
//     threads:      Monte Carlo worker threads, 0 = auto        (default: 0)
//     branches:     partition branches k >= 2                   (default: 2)
//     heal_epoch:   first pairwise heal epoch, 0 = never        (default: 0)
//     heal_stagger: epochs between successive pairwise heals    (default: 0)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "src/analytic/solvers.hpp"
#include "src/scenario/registry.hpp"
#include "src/sim/partition_sim.hpp"

int main(int argc, char** argv) {
  using namespace leak;

  sim::Strategy strategy = sim::Strategy::kSlashable;
  if (argc > 1) {
    const std::string s = argv[1];
    if (s == "honest") strategy = sim::Strategy::kNone;
    else if (s == "slashable") strategy = sim::Strategy::kSlashable;
    else if (s == "semiactive") strategy = sim::Strategy::kSemiActiveFinalize;
    else if (s == "overthrow") strategy = sim::Strategy::kSemiActiveOverthrow;
    else {
      std::fprintf(stderr,
                   "usage: %s [honest|slashable|semiactive|overthrow] "
                   "[beta0] [p0]\n", argv[0]);
      return 1;
    }
  }
  const double beta0 =
      argc > 2 ? std::atof(argv[2])
               : (strategy == sim::Strategy::kNone ? 0.0 : 0.2);
  const double p0 = argc > 3 ? std::atof(argv[3]) : 0.5;
  const unsigned threads =
      argc > 4 ? static_cast<unsigned>(std::atoi(argv[4])) : 0;
  const auto branches =
      argc > 5 ? static_cast<std::uint32_t>(std::atoi(argv[5])) : 2u;
  const auto heal_epoch =
      argc > 6 ? static_cast<std::size_t>(std::atoll(argv[6])) : 0u;
  const auto heal_stagger =
      argc > 7 ? static_cast<std::size_t>(std::atoll(argv[7])) : 0u;

  sim::PartitionSimConfig cfg;
  cfg.n_validators = 1000;
  cfg.beta0 = beta0;
  cfg.p0 = p0;
  cfg.strategy = strategy;
  cfg.max_epochs = heal_epoch > 0 ? 9000 : 6000;
  cfg.trajectory_stride = 250;
  cfg.branches = branches;
  cfg.heal_epoch = heal_epoch;
  cfg.heal_stagger = heal_stagger;

  std::printf("partition scenario: beta0=%.2f p0=%.2f, %u validators, "
              "%u branches%s\n",
              beta0, p0, cfg.n_validators, cfg.branches,
              heal_epoch > 0 ? " (healing)" : "");
  const auto r = sim::run_partition_sim(cfg);
  std::printf("  byzantine: %u, honest:", r.n_byzantine);
  for (const auto c : r.n_honest_per_branch) std::printf(" %u", c);
  std::printf("\n\n");

  if (cfg.branches == 2) {
    std::printf("timeline (sampled every %zu epochs):\n",
                cfg.trajectory_stride);
    std::printf("%8s | %12s %8s | %12s %8s\n", "epoch", "b1 ratio",
                "b1 beta", "b2 ratio", "b2 beta");
    const auto& b1 = r.branch[0];
    const auto& b2 = r.branch[1];
    const std::size_t rows = std::min(b1.ratio_trajectory.size(),
                                      b2.ratio_trajectory.size());
    for (std::size_t i = 0; i < rows; i += 1) {
      std::printf("%8zu | %12.4f %8.4f | %12.4f %8.4f\n",
                  (i + 1) * cfg.trajectory_stride, b1.ratio_trajectory[i],
                  b1.beta_trajectory[i], b2.ratio_trajectory[i],
                  b2.beta_trajectory[i]);
    }
  }

  std::printf("\noutcomes:\n");
  for (std::size_t b = 0; b < r.branch.size(); ++b) {
    const auto& br = r.branch[b];
    std::printf("  branch %zu: supermajority at %lld, finalization at %lld, "
                "honest ejection at %lld, beta peak %.4f (epoch %lld)",
                b + 1, static_cast<long long>(br.supermajority_epoch),
                static_cast<long long>(br.finalization_epoch),
                static_cast<long long>(br.honest_ejection_epoch),
                br.beta_peak, static_cast<long long>(br.beta_peak_epoch));
    if (br.healed_epoch >= 0) {
      std::printf(", healed at %lld",
                  static_cast<long long>(br.healed_epoch));
    }
    std::printf("\n");
  }
  if (heal_epoch > 0) {
    std::printf("\nrecovery tail (after finality resumed):\n");
    for (const auto& rec : r.recovery) {
      if (rec.ejected_before_return) {
        std::printf("  class from branch %u: ejected before it could "
                    "return\n", rec.from_branch + 1);
        continue;
      }
      if (rec.return_epoch < 0) {
        std::printf("  class from branch %u: never returned within the "
                    "horizon (the leak did not end)\n",
                    rec.from_branch + 1);
        continue;
      }
      if (rec.recovery_epochs < 0) {
        std::printf("  class from branch %u (%u validators): returned at "
                    "%lld with score %.0f, recovery still running at the "
                    "horizon\n",
                    rec.from_branch + 1, rec.class_size,
                    static_cast<long long>(rec.return_epoch),
                    rec.score_at_return);
        continue;
      }
      std::printf("  class from branch %u (%u validators): returned at "
                  "%lld with score %.0f, lost %.4f ETH each over %lld "
                  "epochs\n",
                  rec.from_branch + 1, rec.class_size,
                  static_cast<long long>(rec.return_epoch),
                  rec.score_at_return, rec.residual_loss_eth,
                  static_cast<long long>(rec.recovery_epochs));
    }
    if (r.recovery_complete_epoch >= 0) {
      std::printf("  recovery complete at %lld; total residual loss %.3f "
                  "ETH\n",
                  static_cast<long long>(r.recovery_complete_epoch),
                  r.residual_loss_total_eth);
    } else {
      std::printf("  recovery not complete within the horizon\n");
    }
  }
  if (r.conflicting_finalization_epoch > 0) {
    std::printf("  SAFETY LOST: conflicting finalization at epoch %lld "
                "(~%.1f days)\n",
                static_cast<long long>(r.conflicting_finalization_epoch),
                static_cast<double>(r.conflicting_finalization_epoch) * 6.4 /
                    60.0 / 24.0);
  }
  if (r.beta_exceeded_third_both) {
    std::printf("  SAFETY THRESHOLD BROKEN: beta > 1/3 on both branches\n");
  }

  // Monte Carlo over the honest split: the deterministic run above
  // rounds p0 into fixed branch populations; redrawing the assignment
  // iid measures how sensitive the outcome is to the realised split.
  // Runs through the partition-trials registry scenario (same artifact
  // as `leakctl run partition-trials --set strategy=...`).
  {
    // The k-branch / healing configurations run through the
    // multi-partition-recovery scenario; the plain two-branch split
    // keeps using partition-trials (the Table 1 robustness artifact).
    const bool multi = branches > 2 || heal_epoch > 0;
    const auto& trials_scenario = *scenario::builtin_registry().find(
        multi ? "multi-partition-recovery" : "partition-trials");
    auto params = trials_scenario.spec().defaults();
    params.set("paths", std::int64_t{32});
    params.set("n_validators",
               static_cast<std::int64_t>(cfg.n_validators));
    params.set("beta0", beta0);
    params.set("p0", p0);
    params.set("strategy", std::string(argc > 1 ? argv[1] : "slashable"));
    params.set("max_epochs", static_cast<std::int64_t>(cfg.max_epochs));
    params.set("threads", static_cast<std::int64_t>(threads));
    if (multi) {
      params.set("branches", static_cast<std::int64_t>(branches));
      params.set("heal_epoch", static_cast<std::int64_t>(heal_epoch));
      params.set("heal_stagger", static_cast<std::int64_t>(heal_stagger));
    }
    scenario::ScenarioResult mc;
    try {
      mc = trials_scenario.run(params);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "partition_attack: %s\n", e.what());
      return 2;
    }
    std::printf("\nMonte Carlo over 32 random honest splits "
                "(%u threads, scenario \"%s\"):\n",
                mc.threads, mc.scenario.c_str());
    std::printf("  conflicting finalization in %.0f%% of trials"
                " (mean epoch %.0f); beta > 1/3 on both branches in "
                "%.0f%%\n",
                100.0 * mc.metric("conflicting_fraction"),
                mc.metric("mean_conflict_epoch"),
                100.0 * mc.metric("beta_exceeded_fraction"));
    if (multi && heal_epoch > 0) {
      std::printf("  recovery completed in %.0f%% of trials; mean "
                  "residual loss %.3f ETH\n",
                  100.0 * mc.metric("recovered_fraction"),
                  mc.metric("mean_residual_loss_eth"));
    }
  }

  // Closed-form prediction for comparison.
  const auto model = analytic::AnalyticConfig::stated();
  analytic::ByzantineStrategy as = analytic::ByzantineStrategy::kNone;
  if (strategy == sim::Strategy::kSlashable) {
    as = analytic::ByzantineStrategy::kSlashable;
  } else if (strategy == sim::Strategy::kSemiActiveFinalize) {
    as = analytic::ByzantineStrategy::kSemiActive;
  }
  if (strategy != sim::Strategy::kSemiActiveOverthrow) {
    std::printf("\nclosed-form prediction (16.75 ETH threshold): %.0f epochs\n",
                analytic::conflicting_finalization_epoch(p0, beta0, as,
                                                         model));
  } else {
    std::printf("\nclosed-form beta_max (branch 1): %.4f, minimum beta0 to "
                "cross 1/3: %.4f\n",
                analytic::beta_max(p0, beta0, model),
                analytic::beta0_lower_bound(p0, model));
  }
  return 0;
}
