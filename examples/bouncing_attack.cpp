// Probabilistic bouncing attack explorer (Section 5.3).
//
// For a chosen beta0, prints the feasibility window of Eq 14, the
// attack-continuation probabilities, the Eq 24 probability of breaking
// the 1/3 threshold over time, and a Monte Carlo cross-check with the
// exact discrete protocol dynamics.
//
//   ./bouncing_attack [beta0] [p0] [threads]   (defaults: 0.33, 0.5, auto)
//
// threads = 0 (the default) uses LEAK_THREADS or every hardware
// thread; the Monte Carlo result is bit-identical for any value.
#include <cstdio>
#include <cstdlib>

#include "src/analytic/stake_model.hpp"
#include "src/bouncing/distribution.hpp"
#include "src/bouncing/markov.hpp"
#include "src/bouncing/montecarlo.hpp"
#include "src/runner/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace leak;
  const double beta0 = argc > 1 ? std::atof(argv[1]) : 0.33;
  const double p0 = argc > 2 ? std::atof(argv[2]) : 0.5;
  const unsigned threads =
      argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 0;
  const auto cfg = analytic::AnalyticConfig::paper();

  std::printf("probabilistic bouncing attack: beta0=%.4f p0=%.2f\n\n",
              beta0, p0);

  if (const auto iv = bouncing::feasible_p0_interval(beta0)) {
    std::printf("Eq 14 feasibility window for p0: (%.4f, %.4f)%s\n",
                iv->first, iv->second,
                bouncing::attack_feasible(p0, beta0) ? "  [p0 inside]"
                                                     : "  [p0 OUTSIDE]");
  }

  std::printf("\nattack-continuation probability (j = 8 proposer slots):\n");
  for (const std::uint64_t k : {10ULL, 100ULL, 1000ULL}) {
    std::printf("  %5llu epochs: %.3e\n",
                static_cast<unsigned long long>(k),
                bouncing::continuation_probability(beta0, 8, k));
  }

  bouncing::StakeLaw law(p0, cfg);
  std::printf("\nP[beta > 1/3] over time (Eq 24, one branch | both):\n");
  for (double t = 1000.0; t <= 7500.0; t += 500.0) {
    const double one = bouncing::prob_beta_exceeds_third(t, beta0, law, cfg);
    const double both =
        bouncing::prob_beta_exceeds_third_either_branch(t, beta0, law, cfg);
    std::printf("  epoch %5.0f: %.4f | %.4f\n", t, one, both);
  }
  std::printf("byzantine ejection epoch: %.0f\n",
              analytic::ejection_epoch(analytic::Behavior::kSemiActive,
                                       cfg));

  std::printf("\nMonte Carlo cross-check (2000 paths, exact dynamics, "
              "%u threads):\n",
              runner::resolve_threads(threads));
  bouncing::McConfig mc;
  mc.beta0 = beta0;
  mc.p0 = p0;
  mc.paths = 2000;
  mc.epochs = 6000;
  mc.threads = threads;
  const auto r = bouncing::run_bouncing_mc(mc, {2000, 4000, 6000});
  for (std::size_t k = 0; k < r.epochs.size(); ++k) {
    std::printf("  epoch %5zu: P=%.4f (ejected %.3f, capped %.3f)\n",
                r.epochs[k], r.prob_beta_exceeds[k],
                r.ejected_fraction[k], r.capped_fraction[k]);
  }
  return 0;
}
