// Probabilistic bouncing attack explorer (Section 5.3).
//
// For a chosen beta0, prints the feasibility window of Eq 14, the
// attack-continuation probabilities, the Eq 24 probability of breaking
// the 1/3 threshold over time, and a Monte Carlo cross-check with the
// exact discrete protocol dynamics.
//
//   ./bouncing_attack [beta0] [p0] [threads]   (defaults: 0.33, 0.5, auto)
//
// threads = 0 (the default) uses LEAK_THREADS or every hardware
// thread; the Monte Carlo result is bit-identical for any value.
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "src/analytic/stake_model.hpp"
#include "src/bouncing/distribution.hpp"
#include "src/bouncing/markov.hpp"
#include "src/scenario/registry.hpp"
#include "src/support/parse.hpp"

int main(int argc, char** argv) {
  using namespace leak;
  const double beta0 = argc > 1 ? std::atof(argv[1]) : 0.33;
  const double p0 = argc > 2 ? std::atof(argv[2]) : 0.5;
  const unsigned threads =
      argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 0;
  const auto cfg = analytic::AnalyticConfig::paper();

  std::printf("probabilistic bouncing attack: beta0=%.4f p0=%.2f\n\n",
              beta0, p0);

  if (const auto iv = bouncing::feasible_p0_interval(beta0)) {
    std::printf("Eq 14 feasibility window for p0: (%.4f, %.4f)%s\n",
                iv->first, iv->second,
                bouncing::attack_feasible(p0, beta0) ? "  [p0 inside]"
                                                     : "  [p0 OUTSIDE]");
  }

  std::printf("\nattack-continuation probability (j = 8 proposer slots):\n");
  for (const std::uint64_t k : {10ULL, 100ULL, 1000ULL}) {
    std::printf("  %5llu epochs: %.3e\n",
                static_cast<unsigned long long>(k),
                bouncing::continuation_probability(beta0, 8, k));
  }

  bouncing::StakeLaw law(p0, cfg);
  std::printf("\nP[beta > 1/3] over time (Eq 24, one branch | both):\n");
  for (double t = 1000.0; t <= 7500.0; t += 500.0) {
    const double one = bouncing::prob_beta_exceeds_third(t, beta0, law, cfg);
    const double both =
        bouncing::prob_beta_exceeds_third_either_branch(t, beta0, law, cfg);
    std::printf("  epoch %5.0f: %.4f | %.4f\n", t, one, both);
  }
  std::printf("byzantine ejection epoch: %.0f\n",
              analytic::ejection_epoch(analytic::Behavior::kSemiActive,
                                       cfg));

  // Monte Carlo cross-check through the scenario registry — the same
  // artifact `leakctl run bouncing-mc --set beta0=... --set p0=...`
  // produces.
  const auto& mc_scenario =
      *scenario::builtin_registry().find("bouncing-mc");
  auto params = mc_scenario.spec().defaults();
  params.set("beta0", beta0);
  params.set("p0", p0);
  params.set("paths", std::int64_t{2000});
  params.set("epochs", std::int64_t{6000});
  params.set("snapshots", std::string("2000,4000,6000"));
  params.set("threads", static_cast<std::int64_t>(threads));
  scenario::ScenarioResult r;
  try {
    r = mc_scenario.run(params);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "bouncing_attack: %s\n", e.what());
    return 2;
  }
  std::printf("\nMonte Carlo cross-check (2000 paths, exact dynamics, "
              "%u threads, scenario \"%s\"):\n",
              r.threads, r.scenario.c_str());
  for (std::size_t k = 0; k < r.trials->rows(); ++k) {
    const auto cell = [&](std::size_t c) {
      return parse::real(r.trials->cell(k, c)).value_or(0.0);
    };
    std::printf("  epoch %5.0f: P=%.4f (ejected %.3f, capped %.3f)\n",
                cell(0), cell(3), cell(1), cell(2));
  }
  return 0;
}
