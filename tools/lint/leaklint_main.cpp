// leaklint CLI: walks the given files/directories, classifies each
// source by its repo-relative path, runs the determinism rules and
// prints findings as `file:line: severity[rule]: message`.  Exit code
// is nonzero when any unsuppressed finding remains, so the CTest hook
// and CI lint job gate on a clean tree.
//
// Usage:
//   leaklint [--root DIR] [--quiet] [--list-rules] [PATH...]
//
// PATHs are resolved relative to --root (default: the current
// directory) and default to `src tests bench examples`.  Build trees,
// .git, _deps and the deliberately-dirty tests/lint_fixtures corpus
// are always skipped.
#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lint/lint.hpp"

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kDefaultPaths[] = {"src", "tests", "bench",
                                              "examples"};

[[nodiscard]] bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
         ext == ".cxx" || ext == ".hh";
}

[[nodiscard]] bool skipped_component(const std::string& name) {
  return name == ".git" || name == "_deps" || name == "third_party" ||
         name == "lint_fixtures" || name.starts_with("build");
}

[[nodiscard]] bool path_is_skipped(const fs::path& rel) {
  for (const auto& part : rel) {
    if (skipped_component(part.string())) return true;
  }
  return false;
}

void collect(const fs::path& root, const fs::path& arg,
             std::vector<fs::path>& out, bool& ok) {
  const fs::path abs = arg.is_absolute() ? arg : root / arg;
  std::error_code ec;
  if (fs::is_regular_file(abs, ec)) {
    out.push_back(abs);
    return;
  }
  if (!fs::is_directory(abs, ec)) {
    std::cerr << "leaklint: no such file or directory: " << abs.string()
              << "\n";
    ok = false;
    return;
  }
  for (fs::recursive_directory_iterator it(abs, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (it->is_directory() &&
        skipped_component(it->path().filename().string())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable_extension(it->path())) {
      out.push_back(it->path());
    }
  }
}

void print_rules() {
  std::cout << "leaklint determinism rules:\n";
  for (const leak::lint::RuleInfo& r : leak::lint::rule_catalog()) {
    std::cout << "  " << r.id << "  (" << leak::lint::severity_name(r.severity)
              << ")  " << r.summary << "\n";
  }
  std::cout << "\nSuppress a finding with a justified comment on (or "
               "directly above) the line:\n"
               "  // leaklint: allow(D4): lookup-only map, never iterated\n";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  bool quiet = false;
  std::vector<fs::path> args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--list-rules") {
      print_rules();
      return 0;
    }
    if (a == "--quiet") {
      quiet = true;
    } else if (a == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "leaklint: --root needs a directory\n";
        return 2;
      }
      root = argv[++i];
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: leaklint [--root DIR] [--quiet] [--list-rules] "
                   "[PATH...]\n";
      return 0;
    } else if (a.starts_with("-")) {
      std::cerr << "leaklint: unknown option " << a << "\n";
      return 2;
    } else {
      args.emplace_back(std::string(a));
    }
  }
  std::error_code ec;
  root = fs::canonical(root, ec);
  if (ec) {
    std::cerr << "leaklint: bad --root\n";
    return 2;
  }
  if (args.empty()) {
    for (const std::string_view p : kDefaultPaths) {
      if (fs::is_directory(root / p)) args.emplace_back(std::string(p));
    }
  }

  bool ok = true;
  std::vector<fs::path> files;
  for (const fs::path& a : args) collect(root, a, files, ok);
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::size_t n_findings = 0;
  std::size_t n_suppressed = 0;
  std::size_t n_files = 0;
  for (const fs::path& f : files) {
    const fs::path rel = fs::relative(f, root, ec);
    const std::string label =
        (ec || rel.empty()) ? f.generic_string() : rel.generic_string();
    if (path_is_skipped(ec ? f : rel)) continue;
    ++n_files;
    std::size_t suppressed = 0;
    const auto findings = leak::lint::lint_file(
        f.string(), label, leak::lint::classify(label), &suppressed);
    n_suppressed += suppressed;
    for (const leak::lint::Finding& finding : findings) {
      ++n_findings;
      std::cout << finding.file << ":" << finding.line << ": "
                << leak::lint::severity_name(finding.severity) << "["
                << finding.rule << "]: " << finding.message << "\n";
    }
  }
  if (!quiet) {
    std::cerr << "leaklint: " << n_files << " files, " << n_findings
              << " finding" << (n_findings == 1 ? "" : "s") << " ("
              << n_suppressed << " suppressed)\n";
  }
  if (!ok) return 2;
  return n_findings == 0 ? 0 : 1;
}
