#include <algorithm>
#include <cctype>
#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lint/lint.hpp"

namespace leak::lint {

namespace {

[[nodiscard]] bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// A (possibly ::-qualified) identifier chain in the stripped code.
struct Token {
  std::string name;        ///< e.g. "std::chrono::steady_clock::now"
  std::size_t line = 0;    ///< physical line of the chain's first part
  std::size_t end = 0;     ///< offset one past the chain in the code
  bool called = false;     ///< next non-ws char is '('
  bool member = false;     ///< preceded by '.' or '->' (member access)
  bool on_directive = false;  ///< logical line starts with '#'
};

struct Scan {
  std::vector<Token> tokens;
  /// 1-based line -> true when the line is a preprocessor directive
  /// (including splice continuations).
  std::vector<bool> directive;
};

[[nodiscard]] std::size_t skip_ws(std::string_view code, std::size_t i) {
  while (i < code.size() &&
         std::isspace(static_cast<unsigned char>(code[i])) != 0) {
    ++i;
  }
  return i;
}

[[nodiscard]] Scan scan_tokens(std::string_view code) {
  Scan out;
  out.directive.assign(2, false);
  std::size_t line = 1;
  bool line_blank = true;   // only whitespace so far on this line
  bool in_directive = false;
  char prev_nonspace = '\0';
  char prev_nonspace2 = '\0';
  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '\n') {
      // A directive whose line ends in a backslash continues.
      in_directive = in_directive && i > 0 && code[i - 1] == '\\';
      ++line;
      out.directive.push_back(in_directive);
      line_blank = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) continue;
    if (c == '#' && line_blank) {
      in_directive = true;
      out.directive[line] = true;
    }
    line_blank = false;
    if (!is_ident_start(c)) {
      prev_nonspace2 = prev_nonspace;
      prev_nonspace = c;
      continue;
    }
    // Assemble the full qualified chain.
    Token tok;
    tok.line = line;
    tok.on_directive = in_directive;
    tok.member = prev_nonspace == '.' ||
                 (prev_nonspace == '>' && prev_nonspace2 == '-');
    prev_nonspace2 = '\0';
    prev_nonspace = 'a';  // any identifier stands in for "not an access"
    std::size_t j = i;
    while (j < code.size()) {
      const std::size_t start = j;
      while (j < code.size() && is_ident(code[j])) ++j;
      tok.name.append(code.substr(start, j - start));
      const std::size_t k = skip_ws(code, j);
      if (k + 1 < code.size() && code[k] == ':' && code[k + 1] == ':') {
        const std::size_t m = skip_ws(code, k + 2);
        if (m < code.size() && is_ident_start(code[m])) {
          tok.name.append("::");
          // Account newlines crossed inside the chain.
          for (std::size_t x = j; x < m; ++x) {
            if (code[x] == '\n') ++line;
          }
          j = m;
          continue;
        }
      }
      break;
    }
    tok.end = j;
    const std::size_t k = skip_ws(code, j);
    tok.called = k < code.size() && code[k] == '(';
    out.tokens.push_back(std::move(tok));
    i = j - 1;
  }
  return out;
}

[[nodiscard]] bool contains(std::string_view hay, std::string_view needle) {
  return hay.find(needle) != std::string_view::npos;
}

[[nodiscard]] std::string_view last_component(std::string_view name) {
  const std::size_t at = name.rfind("::");
  return at == std::string_view::npos ? name : name.substr(at + 2);
}

/// True when `name` is the bare or std-qualified C entropy/time call.
[[nodiscard]] bool is_c_entropy_call(std::string_view name) {
  for (const std::string_view base : {"rand", "srand", "time", "clock"}) {
    if (name == base) return true;
    if (name.size() == base.size() + 5 && name.starts_with("std::") &&
        name.substr(5) == base) {
      return true;
    }
  }
  return false;
}

constexpr std::string_view kStdEngines[] = {
    "mt19937",
    "minstd_rand",
    "default_random_engine",
    "ranlux24",
    "ranlux48",
    "knuth_b",
    "mersenne_twister_engine",
    "linear_congruential_engine",
    "subtract_with_carry_engine",
    "discard_block_engine",
    "independent_bits_engine",
    "shuffle_order_engine",
};

/// Does `std::vector` / `vector` at token `t` instantiate over bool?
[[nodiscard]] bool vector_of_bool(std::string_view code, const Token& t) {
  std::size_t i = skip_ws(code, t.end);
  if (i >= code.size() || code[i] != '<') return false;
  i = skip_ws(code, i + 1);
  if (code.compare(i, 4, "bool") != 0) return false;
  if (i + 4 < code.size() && is_ident(code[i + 4])) return false;
  i = skip_ws(code, i + 4);
  return i < code.size() && code[i] == '>';
}

/// Scans the parenthesized argument list that starts right after token
/// `t` for a float-suffixed literal (e.g. 0.f, 1.5f, 2e3f).
[[nodiscard]] bool call_args_have_float_literal(std::string_view code,
                                                const Token& t) {
  std::size_t i = skip_ws(code, t.end);
  if (i >= code.size() || code[i] != '(') return false;
  int depth = 0;
  for (; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '(') ++depth;
    if (c == ')' && --depth == 0) break;
    if ((c == 'f' || c == 'F') && i > 0 &&
        (std::isdigit(static_cast<unsigned char>(code[i - 1])) != 0 ||
         code[i - 1] == '.') &&
        (i + 1 >= code.size() || !is_ident(code[i + 1]))) {
      // Preceded by a digit or '.', i.e. a numeric literal suffix, not
      // an identifier ending in f.
      std::size_t b = i - 1;
      while (b > 0 && (std::isdigit(static_cast<unsigned char>(code[b])) != 0 ||
                       code[b] == '.' || code[b] == 'e' || code[b] == 'E' ||
                       code[b] == '+' || code[b] == '-')) {
        --b;
      }
      if (!is_ident(code[b])) return true;
    }
  }
  return false;
}

/// Mutable-global detection: walks the brace structure and flags
/// `type name = init;` statements whose every enclosing brace is a
/// namespace (or extern-linkage) brace and which carry no
/// const/constexpr/static/... qualifier.  Heuristic by design — it
/// catches the `int g_counter = 0;` shape; `Foo g{1};` constructor
/// shapes are out of scope (reviewed by eye, caught by TSan at
/// runtime).
void scan_mutable_globals(std::string_view code, std::string_view file,
                          std::vector<Finding>& findings) {
  static constexpr std::string_view kSkipKeywords[] = {
      "using",     "typedef", "namespace",     "template", "static",
      "extern",    "friend",  "struct",        "class",    "enum",
      "union",     "concept", "static_assert", "operator", "requires",
      "const",     "constexpr", "constinit",   "consteval", "thread_local",
  };
  std::vector<bool> ns_brace;  // stack: is this brace a namespace brace?
  std::vector<std::string> stmt;  // identifier tokens of the open statement
  bool stmt_has_assign = false;
  bool stmt_has_paren_before_assign = false;
  std::size_t stmt_line = 0;
  std::size_t line = 1;
  bool line_blank = true;
  bool in_directive = false;
  int angle_depth = 0;

  const auto at_global = [&] {
    return std::all_of(ns_brace.begin(), ns_brace.end(),
                       [](bool b) { return b; });
  };
  const auto reset_stmt = [&] {
    stmt.clear();
    stmt_has_assign = false;
    stmt_has_paren_before_assign = false;
    stmt_line = 0;
  };
  const auto flush_stmt = [&] {
    if (!stmt.empty() && stmt_has_assign && !stmt_has_paren_before_assign &&
        stmt.size() >= 2) {
      for (const std::string& kw : stmt) {
        for (const std::string_view skip : kSkipKeywords) {
          if (kw == skip) {
            reset_stmt();
            return;
          }
        }
      }
      findings.push_back(Finding{
          "D5", Severity::kWarning, std::string(file), stmt_line,
          "mutable namespace-scope variable '" + stmt.back() +
              "': shared mutable state breaks cross-thread determinism; "
              "make it const/constexpr, function-local, or static with a "
              "justified suppression"});
    }
    reset_stmt();
  };

  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '\n') {
      in_directive = in_directive && i > 0 && code[i - 1] == '\\';
      ++line;
      line_blank = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) continue;
    if (c == '#' && line_blank) in_directive = true;
    line_blank = false;
    if (in_directive) continue;

    if (is_ident_start(c)) {
      std::size_t j = i;
      while (j < code.size() && is_ident(code[j])) ++j;
      if (at_global()) {
        if (stmt.empty()) stmt_line = line;
        stmt.emplace_back(code.substr(i, j - i));
      }
      i = j - 1;
      continue;
    }
    switch (c) {
      case '{': {
        // Namespace brace: the open statement reads `namespace [id]`.
        const bool is_ns =
            !stmt.empty() && (stmt.front() == "namespace" ||
                              (stmt.front() == "extern" && stmt.size() == 1));
        ns_brace.push_back(is_ns);
        reset_stmt();
        angle_depth = 0;
        break;
      }
      case '}': {
        if (!ns_brace.empty()) ns_brace.pop_back();
        reset_stmt();
        angle_depth = 0;
        break;
      }
      case ';': {
        if (at_global()) flush_stmt();
        angle_depth = 0;
        break;
      }
      case '=': {
        if (at_global() && !stmt.empty()) {
          // `==`, `<=`, `!=` etc. cannot appear in a declaration head;
          // only a bare '=' marks an initializer.
          const char prev = i > 0 ? code[i - 1] : '\0';
          const char next = i + 1 < code.size() ? code[i + 1] : '\0';
          if (prev != '=' && prev != '<' && prev != '>' && prev != '!' &&
              next != '=' && angle_depth == 0) {
            stmt_has_assign = true;
          }
        }
        break;
      }
      case '(': {
        if (at_global() && !stmt_has_assign) {
          stmt_has_paren_before_assign = true;
        }
        break;
      }
      case '<':
        ++angle_depth;
        break;
      case '>':
        if (angle_depth > 0) --angle_depth;
        break;
      default:
        break;
    }
  }
}

void apply_suppressions(const std::vector<Suppression>& sups,
                        std::string_view file,
                        std::vector<Finding>& findings,
                        std::size_t* suppressed_out) {
  std::size_t suppressed = 0;
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (Finding& f : findings) {
    bool drop = false;
    for (const Suppression& s : sups) {
      if (s.malformed || !s.justified) continue;
      const bool covers =
          (f.line >= s.line_begin && f.line <= s.line_end) ||
          (s.comment_only && f.line == s.line_end + 1);
      if (!covers) continue;
      if (std::find(s.rules.begin(), s.rules.end(), f.rule) !=
          s.rules.end()) {
        drop = true;
        break;
      }
    }
    if (drop) {
      ++suppressed;
    } else {
      kept.push_back(std::move(f));
    }
  }
  findings = std::move(kept);
  for (const Suppression& s : sups) {
    if (s.malformed) {
      findings.push_back(Finding{
          "S1", Severity::kError, std::string(file), s.line_begin,
          "malformed leaklint suppression: expected "
          "`leaklint: allow(<rule>[,<rule>...]): <justification>` with a "
          "non-empty justification"});
      continue;
    }
    for (const std::string& id : s.rules) {
      const auto& catalog = rule_catalog();
      const bool known =
          std::any_of(catalog.begin(), catalog.end(),
                      [&](const RuleInfo& r) { return id == r.id; });
      if (!known) {
        findings.push_back(Finding{
            "S1", Severity::kError, std::string(file), s.line_begin,
            "leaklint suppression names unknown rule '" + id + "'"});
      }
    }
  }
  if (suppressed_out != nullptr) *suppressed_out = suppressed;
}

}  // namespace

const char* severity_name(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"D1", Severity::kError,
       "direct entropy/wall-clock (std::random_device, rand, srand, time, "
       "clock, *_clock::now) in src/ outside src/support/version"},
      {"D2", Severity::kError,
       "std <random> engine construction outside src/support/random.hpp; "
       "all draws must route through StreamSeeder/xoshiro lanes"},
      {"D3", Severity::kError,
       "std::vector<bool> in src/: packed words race under concurrent "
       "writers and defeat SoA layouts; use std::vector<std::uint8_t>"},
      {"D4", Severity::kWarning,
       "std::unordered_map/std::unordered_set in a kernel/reduction TU "
       "(src/bouncing, src/faults, src/kernel, src/runner, src/search, "
       "src/sim, src/penalties): "
       "iteration order would feed float accumulation; use an ordered "
       "container or justify that the site never iterates"},
      {"D5", Severity::kWarning,
       "non-static mutable namespace-scope variable or thread_local in "
       "src/: shared mutable state undermines cross-thread bit-identity"},
      {"D6", Severity::kWarning,
       "float-accumulation hazard in a kernel/reduction TU: float "
       "variables, float-suffixed std::accumulate init, or unordered "
       "std::reduce/transform_reduce; accumulation must stay double and "
       "ordered"},
      {"S1", Severity::kError,
       "malformed leaklint suppression (missing justification, unknown "
       "rule id, or unparsable allow())"},
  };
  return kCatalog;
}

FileClass classify(std::string_view rel_path) {
  FileClass cls;
  cls.in_src = rel_path.starts_with("src/");
  for (const std::string_view dir :
       {"src/bouncing/", "src/faults/", "src/kernel/", "src/runner/",
        "src/search/", "src/sim/", "src/penalties/"}) {
    if (rel_path.starts_with(dir)) cls.kernel_tu = true;
  }
  cls.entropy_allowed = rel_path.starts_with("src/support/version");
  cls.engine_allowed = rel_path == "src/support/random.hpp";
  return cls;
}

std::vector<Finding> lint_source(std::string_view file_label,
                                 std::string_view content,
                                 const FileClass& cls,
                                 std::size_t* suppressed_out) {
  std::vector<Finding> findings;
  const Stripped stripped = strip(content);
  const std::string_view code = stripped.code;
  const Scan scan = scan_tokens(code);

  const auto add = [&](const char* rule, Severity sev, std::size_t line,
                       std::string message) {
    findings.push_back(
        Finding{rule, sev, std::string(file_label), line, std::move(message)});
  };

  for (const Token& t : scan.tokens) {
    const std::string_view name = t.name;

    // D1 — direct entropy / wall clocks in src/.
    if (cls.in_src && !cls.entropy_allowed) {
      if (contains(name, "random_device")) {
        add("D1", Severity::kError, t.line,
            "std::random_device is nondeterministic entropy; derive all "
            "randomness from StreamSeeder (src/support/random.hpp)");
      } else if (last_component(name) == "now" && contains(name, "clock")) {
        add("D1", Severity::kError, t.line,
            "wall-clock read '" + t.name +
                "' in simulation code; only src/support/version may "
                "touch the clock (provenance metadata)");
      } else if (t.called && !t.member && is_c_entropy_call(name)) {
        add("D1", Severity::kError, t.line,
            "C entropy/time call '" + t.name +
                "()' is nondeterministic; use StreamSeeder streams");
      }
    }

    // D2 — std <random> engines anywhere but src/support/random.hpp.
    if (!cls.engine_allowed) {
      for (const std::string_view engine : kStdEngines) {
        if (contains(name, engine)) {
          add("D2", Severity::kError, t.line,
              "std <random> engine '" + t.name +
                  "' bypasses the StreamSeeder/xoshiro lanes; every draw "
                  "must come from leak::Rng");
          break;
        }
      }
      if (t.on_directive && name == "include") {
        const std::size_t k = skip_ws(code, t.end);
        if (code.compare(k, 8, "<random>") == 0) {
          add("D2", Severity::kError, t.line,
              "#include <random>: the std engines it provides are banned; "
              "use src/support/random.hpp");
        }
      }
    }

    // D3 — std::vector<bool> in src/.
    if (cls.in_src && last_component(name) == "vector" &&
        vector_of_bool(code, t)) {
      add("D3", Severity::kError, t.line,
          "std::vector<bool>: packed words race under concurrent writers "
          "and defeat SoA layouts; use std::vector<std::uint8_t>");
    }

    // D4 — unordered containers in kernel/reduction TUs.
    if (cls.kernel_tu && !t.on_directive &&
        (contains(name, "unordered_map") || contains(name, "unordered_set"))) {
      add("D4", Severity::kWarning, t.line,
          "'" + t.name +
              "' in a kernel/reduction TU: hash-order iteration feeding an "
              "accumulation is nondeterministic across libraries; use an "
              "ordered container or justify that this site never iterates");
    }

    // D5 — thread_local (the mutable-global scan below covers the rest).
    if (cls.in_src && name == "thread_local") {
      add("D5", Severity::kWarning, t.line,
          "thread_local state: per-thread values must never influence "
          "results (bit-identity is per trial index, not per thread); "
          "justify or restructure");
    }

    // D6 — float accumulation hazards in kernel/reduction TUs.
    if (cls.kernel_tu) {
      if (name == "float") {
        add("D6", Severity::kWarning, t.line,
            "'float' in a kernel/reduction TU: accumulation must stay "
            "double (float round-off is order-visible at path counts)");
      } else if (last_component(name) == "reduce" ||
                 last_component(name) == "transform_reduce") {
        add("D6", Severity::kWarning, t.line,
            "'" + t.name +
                "' performs unordered reduction; use an ordered "
                "accumulate/merge so results are bit-identical");
      } else if (last_component(name) == "accumulate" &&
                 call_args_have_float_literal(code, t)) {
        add("D6", Severity::kWarning, t.line,
            "std::accumulate with a float-typed init literal accumulates "
            "in float; make the init double");
      }
    }
  }

  if (cls.in_src) {
    scan_mutable_globals(code, file_label, findings);
  }

  apply_suppressions(stripped.suppressions, file_label, findings,
                     suppressed_out);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> lint_file(const std::string& path,
                               std::string_view file_label,
                               const FileClass& cls,
                               std::size_t* suppressed_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {Finding{"IO", Severity::kError, std::string(file_label), 0,
                    "cannot read file"}};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_source(file_label, buf.str(), cls, suppressed_out);
}

}  // namespace leak::lint
