#include <algorithm>
#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>

#include "tools/lint/lint.hpp"

namespace leak::lint {

namespace {

[[nodiscard]] bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] std::string_view trim(std::string_view s) {
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses one finished comment body for a `leaklint: allow(...)` marker.
/// Returns true when the comment mentions leaklint at all (well-formed
/// or not), filling `out`.
bool parse_suppression(std::string_view comment, Suppression& out) {
  const std::size_t at = comment.find("leaklint:");
  if (at == std::string_view::npos) return false;
  std::string_view rest = trim(comment.substr(at + 9));
  if (!rest.starts_with("allow")) {
    out.malformed = true;
    return true;
  }
  rest = trim(rest.substr(5));
  if (!rest.starts_with("(")) {
    out.malformed = true;
    return true;
  }
  const std::size_t close = rest.find(')');
  if (close == std::string_view::npos) {
    out.malformed = true;
    return true;
  }
  // Comma-separated rule ids.
  std::string_view ids = rest.substr(1, close - 1);
  while (!ids.empty()) {
    const std::size_t comma = ids.find(',');
    const std::string_view id = trim(ids.substr(0, comma));
    if (!id.empty()) out.rules.emplace_back(id);
    if (comma == std::string_view::npos) break;
    ids.remove_prefix(comma + 1);
  }
  if (out.rules.empty()) {
    out.malformed = true;
    return true;
  }
  // Mandatory justification: whatever follows the close paren (an
  // optional ':' or '-' separator, then prose).
  std::string_view just = trim(rest.substr(close + 1));
  if (!just.empty() && (just.front() == ':' || just.front() == '-')) {
    just = trim(just.substr(1));
  }
  out.justified = !just.empty();
  out.malformed = !out.justified;
  return true;
}

}  // namespace

Stripped strip(std::string_view source) {
  Stripped out;
  out.code.assign(source.size(), ' ');

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;

  std::size_t line = 1;
  std::size_t comment_begin_line = 0;
  bool comment_only = true;   // nothing but whitespace before the comment
  bool line_has_code = false; // non-ws, non-comment char seen this line
  std::string comment_text;
  std::string raw_delim;  // ")delim" terminator of the active raw string

  const auto finish_comment = [&](std::size_t end_line) {
    Suppression s;
    if (parse_suppression(comment_text, s)) {
      s.line_begin = comment_begin_line;
      s.line_end = end_line;
      s.comment_only = comment_only;
      out.suppressions.push_back(std::move(s));
    }
    comment_text.clear();
  };

  const std::size_t n = source.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = source[i];
    const char next = i + 1 < n ? source[i + 1] : '\0';
    if (c == '\n') ++line;

    switch (state) {
      case State::kCode: {
        if (c == '\n') {
          out.code[i] = '\n';
          line_has_code = false;
          break;
        }
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_begin_line = line;
          comment_only = !line_has_code;
          ++i;  // swallow the second '/'
          break;
        }
        if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_begin_line = line;
          comment_only = !line_has_code;
          ++i;
          break;
        }
        if (c == '"') {
          // Raw string?  Look back over an optional encoding prefix for
          // an R not glued to a longer identifier.
          std::size_t p = i;
          bool raw = false;
          if (p > 0 && source[p - 1] == 'R' &&
              (p < 2 || !is_ident(source[p - 2]) ||
               (p >= 2 && (source[p - 2] == 'u' || source[p - 2] == 'U' ||
                           source[p - 2] == 'L') &&
                (p < 3 || !is_ident(source[p - 3]))))) {
            raw = true;
          }
          if (raw) {
            std::size_t j = i + 1;
            std::string delim;
            while (j < n && source[j] != '(' && delim.size() < 16) {
              delim.push_back(source[j]);
              ++j;
            }
            if (j < n && source[j] == '(') {
              state = State::kRawString;
              raw_delim = ")" + delim + "\"";
              out.code[i] = '"';
              // Blank the delimiter and '(' too (they are literal text).
              i = j;
              break;
            }
          }
          state = State::kString;
          out.code[i] = '"';
          break;
        }
        if (c == '\'') {
          // A quote glued to an identifier/number char is a digit
          // separator (1'000'000), not a char literal.
          if (i > 0 && is_ident(source[i - 1])) {
            break;  // blanked; harmless inside a numeric token
          }
          state = State::kChar;
          out.code[i] = '\'';
          break;
        }
        out.code[i] = c;
        if (std::isspace(static_cast<unsigned char>(c)) == 0) {
          line_has_code = true;
        }
        break;
      }

      case State::kLineComment: {
        if (c == '\n') {
          // A line comment whose final character is a backslash splices
          // onto the next physical line and stays a comment.
          std::size_t back = i;
          while (back > 0 && (source[back - 1] == '\r')) --back;
          if (back > 0 && source[back - 1] == '\\') {
            out.code[i] = '\n';
            comment_text.push_back('\n');
            break;
          }
          finish_comment(line - 1);
          state = State::kCode;
          out.code[i] = '\n';
          line_has_code = false;
          break;
        }
        comment_text.push_back(c);
        break;
      }

      case State::kBlockComment: {
        if (c == '\n') {
          out.code[i] = '\n';
          comment_text.push_back('\n');
          break;
        }
        if (c == '*' && next == '/') {
          finish_comment(line);
          state = State::kCode;
          ++i;
          break;
        }
        comment_text.push_back(c);
        break;
      }

      case State::kString: {
        if (c == '\\') {
          ++i;  // skip the escaped character (covers \" and \\)
          if (i < n && source[i] == '\n') {
            out.code[i] = '\n';
            ++line;
          }
          break;
        }
        if (c == '"') {
          state = State::kCode;
          out.code[i] = '"';
          break;
        }
        if (c == '\n') out.code[i] = '\n';  // unterminated; keep lines
        break;
      }

      case State::kChar: {
        if (c == '\\') {
          ++i;
          break;
        }
        if (c == '\'') {
          state = State::kCode;
          out.code[i] = '\'';
          break;
        }
        if (c == '\n') out.code[i] = '\n';
        break;
      }

      case State::kRawString: {
        if (c == '\n') out.code[i] = '\n';
        if (c == ')' && source.compare(i, raw_delim.size(), raw_delim) == 0) {
          // Count the newlines the delimiter check skipped (none: the
          // delimiter cannot contain newlines).
          i += raw_delim.size() - 1;
          out.code[i] = '"';
          state = State::kCode;
        }
        break;
      }
    }
  }
  if (state == State::kLineComment || state == State::kBlockComment) {
    finish_comment(line);
  }
  return out;
}

}  // namespace leak::lint
