// leaklint: the project's determinism-invariant static-analysis pass.
//
// The repo's correctness story — cross-thread/cross-block bit-identity
// for every Monte Carlo driver and exact baseline replay in CI — rests
// on conventions (StreamSeeder-only RNG, no std::vector<bool> in
// concurrent paths, ordered-merge reductions) that the compiler cannot
// check.  leaklint checks them.  It is a lexer-level pass: comments,
// strings, char literals and raw strings are blanked before any rule
// runs, line splices inside macros map tokens back to their physical
// line, and every finding carries file:line, a severity, and a rule id.
//
// Findings are silenced per line with a justified suppression comment:
//
//   foo();  // leaklint: allow(D4): lookup-only map, never iterated
//
// The justification text is mandatory; a bare allow() is itself a
// finding (rule S1).  A suppression on a comment-only line covers the
// next line instead.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace leak::lint {

enum class Severity { kWarning, kError };

[[nodiscard]] const char* severity_name(Severity s);

/// One rule violation (or a malformed suppression).
struct Finding {
  std::string rule;
  Severity severity = Severity::kError;
  std::string file;
  std::size_t line = 0;
  std::string message;
};

struct RuleInfo {
  const char* id;
  Severity severity;
  const char* summary;
};

/// The rule catalog (D1-D6 plus the suppression-hygiene rule S1).
[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();

/// Which rule groups apply to a file, decided from its repo-relative
/// path.  Tests construct this directly to lint fixtures as-if-src.
struct FileClass {
  /// Under src/: D1 (direct entropy), D3 (vector<bool>), D5 (mutable
  /// globals / thread_local) apply.
  bool in_src = false;
  /// Kernel/reduction TU (src/bouncing, src/runner, src/sim,
  /// src/penalties): D4 (unordered iteration) and D6 (float
  /// accumulation) apply on top.
  bool kernel_tu = false;
  /// src/support/version.*: the one sanctioned wall-clock site.
  bool entropy_allowed = false;
  /// src/support/random.hpp: the one sanctioned RNG-engine site.
  bool engine_allowed = false;
};

[[nodiscard]] FileClass classify(std::string_view rel_path);

/// A parsed `leaklint: allow(...)` comment.  `line_begin..line_end` is
/// the physical extent of the comment; a comment-only suppression also
/// covers the first line after it.
struct Suppression {
  std::size_t line_begin = 0;
  std::size_t line_end = 0;
  std::vector<std::string> rules;
  bool justified = false;
  bool comment_only = false;
  /// Set when the comment contains `leaklint:` but does not parse as a
  /// well-formed, justified allow().  Malformed suppressions never
  /// silence anything; they surface as S1.
  bool malformed = false;
};

/// Lexer output.  `code` matches the input byte-for-byte in length and
/// line structure, with comment bodies and string/char-literal contents
/// blanked to spaces, so token scans can never fire inside text.
struct Stripped {
  std::string code;
  std::vector<Suppression> suppressions;
};

[[nodiscard]] Stripped strip(std::string_view source);

/// Run every applicable rule over one source buffer.  `file_label` is
/// echoed into the findings.  Suppressed findings are dropped;
/// malformed suppressions come back as S1.  `suppressed_out`, when
/// non-null, receives the number of findings a justified allow()
/// silenced.
[[nodiscard]] std::vector<Finding> lint_source(
    std::string_view file_label, std::string_view content,
    const FileClass& cls, std::size_t* suppressed_out = nullptr);

/// Read `path` and lint it; an unreadable file is an IO finding.
[[nodiscard]] std::vector<Finding> lint_file(
    const std::string& path, std::string_view file_label,
    const FileClass& cls, std::size_t* suppressed_out = nullptr);

}  // namespace leak::lint
