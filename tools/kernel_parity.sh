#!/usr/bin/env bash
# Kernel lockstep parity gate: every Monte Carlo driver must produce a
# bit-identical JSON report at every (block, threads) combination —
# the batched kernel's (block, threads)-independence contract, checked
# end to end through leakctl instead of unit-test aggregates.
#
# For each driver scenario the (block=1, threads=1) run is the
# reference; every other grid cell must match it byte for byte after
# normalization (the report's meta block carries wall time and the
# resolved thread count, and params echoes the block/threads knobs —
# none of which are simulation results).
#
# Usage: tools/kernel_parity.sh LEAKCTL [OUT_DIR]
set -euo pipefail

LEAKCTL="${1:?usage: kernel_parity.sh LEAKCTL [OUT_DIR]}"
OUT_DIR="${2:-kernel-parity}"
PATHS=64

SCENARIOS=(bouncing-mc attack-lifetime population-ensemble partition-trials)
BLOCKS=(1 64)
THREADS=(1 4)

mkdir -p "${OUT_DIR}"

normalize() {
  python3 - "$1" "$2" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
report.pop("meta", None)
for knob in ("threads", "block"):
    report.get("params", {}).pop(knob, None)
with open(sys.argv[2], "w") as fh:
    json.dump(report, fh, sort_keys=True, separators=(",", ":"))
EOF
}

failures=0
for scenario in "${SCENARIOS[@]}"; do
  ref="${OUT_DIR}/${scenario}-ref.json"
  "${LEAKCTL}" run "${scenario}" --paths "${PATHS}" --threads 1 --block 1 \
      --json "${ref}.raw" --quiet > /dev/null
  normalize "${ref}.raw" "${ref}"
  for block in "${BLOCKS[@]}"; do
    for threads in "${THREADS[@]}"; do
      [[ "${block}" == 1 && "${threads}" == 1 ]] && continue
      cell="${OUT_DIR}/${scenario}-b${block}-t${threads}.json"
      "${LEAKCTL}" run "${scenario}" --paths "${PATHS}" \
          --threads "${threads}" --block "${block}" \
          --json "${cell}.raw" --quiet > /dev/null
      normalize "${cell}.raw" "${cell}"
      if cmp -s "${ref}" "${cell}"; then
        echo "ok   ${scenario} block=${block} threads=${threads}"
      else
        echo "FAIL ${scenario} block=${block} threads=${threads}:" \
             "report differs from block=1 threads=1" >&2
        failures=$((failures + 1))
      fi
    done
  done
done

if [[ "${failures}" -gt 0 ]]; then
  echo "kernel parity: ${failures} grid cell(s) diverged" >&2
  exit 1
fi
echo "kernel parity: all ${#SCENARIOS[@]} drivers bit-identical across" \
     "block x threads grid"
