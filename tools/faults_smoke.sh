#!/usr/bin/env bash
# End-to-end smoke for the fault-injection harness (CI runs this in
# the scenario-matrix job; it is also the quickest local check that
# the scripted-weather contract holds on this machine).
#
# The contract it proves, with a real binary and the committed example
# schedules:
#
#   1. Both fault scenarios (cascading-partitions, flaky-network) run
#      green at --paths 64 and emit valid JSON.
#   2. A schedule file loaded via `leakctl run --faults FILE` produces
#      metrics/stats/trials BYTE-IDENTICAL to the equivalent knob run:
#      examples/schedules/cascade.json and flaky.json encode exactly
#      the scenarios' default geometry, so the compiled FaultSchedule
#      path and the knob path must agree bit for bit.
#
# Usage: tools/faults_smoke.sh [-b BUILD_DIR]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${REPO_ROOT}/build"

while [[ $# -gt 0 ]]; do
  case "$1" in
    -b) BUILD_DIR="$2"; shift 2 ;;
    *) echo "usage: $0 [-b BUILD_DIR]" >&2; exit 2 ;;
  esac
done

LEAKCTL="${BUILD_DIR}/examples/leakctl"
if [[ ! -x "${LEAKCTL}" ]]; then
  echo "error: ${LEAKCTL} not found - build it first:" >&2
  echo "  cmake -B \"${BUILD_DIR}\" -S \"${REPO_ROOT}\" && cmake --build \"${BUILD_DIR}\" --target leakctl -j" >&2
  exit 1
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/leak_faults_smoke.XXXXXX")"
trap 'rm -rf "${WORK}"' EXIT

# Non-geometry knobs only: the partition/weather geometry stays at the
# scenario defaults, which is exactly what the example schedules encode.
CASCADE_SETS=(--set n_validators=120 --set max_epochs=6000)
FLAKY_SETS=(--set n_honest=16 --set epochs=8)

echo "== both fault scenarios run green at --paths 64 =="
"${LEAKCTL}" run cascading-partitions --paths 64 \
  --set n_validators=90 --set max_epochs=4000 \
  --set heal_epoch=1000 --set heal_stagger=200 --set open_stagger=100 \
  --quiet --json "${WORK}/cascade-64.json"
"${LEAKCTL}" run flaky-network --paths 64 "${FLAKY_SETS[@]}" \
  --quiet --json "${WORK}/flaky-64.json"
python3 -c "import json,sys
for p in sys.argv[1:]:
    json.load(open(p))" "${WORK}/cascade-64.json" "${WORK}/flaky-64.json"

compare() {
  local label="$1" knobs="$2" faults="$3"
  python3 - "${knobs}" "${faults}" "${label}" <<'EOF'
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
label = sys.argv[3]
for key in ("metrics", "stats", "trials"):
    if a.get(key) != b.get(key):
        sys.exit(f"FAIL ({label}): {key} differ between knob and --faults runs")
if not b["params"].get("faults"):
    sys.exit(f"FAIL ({label}): the --faults run did not record its schedule")
print(f"OK ({label}): metrics/stats/trials byte-equal, schedule recorded")
EOF
}

echo "== cascade.json via --faults == knob run, bit for bit =="
"${LEAKCTL}" run cascading-partitions --paths 4 "${CASCADE_SETS[@]}" \
  --quiet --json "${WORK}/cascade-knobs.json"
"${LEAKCTL}" run cascading-partitions --paths 4 "${CASCADE_SETS[@]}" \
  --faults "${REPO_ROOT}/examples/schedules/cascade.json" \
  --quiet --json "${WORK}/cascade-faults.json"
compare "cascading-partitions" \
  "${WORK}/cascade-knobs.json" "${WORK}/cascade-faults.json"

echo "== flaky.json via --faults == knob run, bit for bit =="
"${LEAKCTL}" run flaky-network --paths 4 "${FLAKY_SETS[@]}" \
  --quiet --json "${WORK}/flaky-knobs.json"
"${LEAKCTL}" run flaky-network --paths 4 "${FLAKY_SETS[@]}" \
  --faults "${REPO_ROOT}/examples/schedules/flaky.json" \
  --quiet --json "${WORK}/flaky-faults.json"
compare "flaky-network" \
  "${WORK}/flaky-knobs.json" "${WORK}/flaky-faults.json"

echo "PASS: fault-injection smoke complete"
