#!/usr/bin/env bash
# End-to-end smoke for `leakctl search` (CI runs this in the
# scenario-matrix job; it is also the quickest local check that the
# journaled-search contract holds on this machine).
#
# The contract it proves, with a real binary and a real journal:
#
#   1. A search interrupted by budget exhaustion (plus a deliberately
#      torn record tail — the crash-mid-append case) resumes to a
#      journal that is BYTE-IDENTICAL to an uninterrupted run's.
#   2. Resuming a completed search evaluates zero fresh candidates.
#
# Usage: tools/search_smoke.sh [-b BUILD_DIR]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${REPO_ROOT}/build"

while [[ $# -gt 0 ]]; do
  case "$1" in
    -b) BUILD_DIR="$2"; shift 2 ;;
    *) echo "usage: $0 [-b BUILD_DIR]" >&2; exit 2 ;;
  esac
done

LEAKCTL="${BUILD_DIR}/examples/leakctl"
if [[ ! -x "${LEAKCTL}" ]]; then
  echo "error: ${LEAKCTL} not found - build it first:" >&2
  echo "  cmake -B \"${BUILD_DIR}\" -S \"${REPO_ROOT}\" && cmake --build \"${BUILD_DIR}\" --target leakctl -j" >&2
  exit 1
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/leak_search_smoke.XXXXXX")"
trap 'rm -rf "${WORK}"' EXIT

# A cheap analytic objective so the smoke is bookkeeping-bound, not
# simulation-bound (same shape as bench_search_inner_loop).
SEARCH_ARGS=(search semiactive-sweep:beta_max:max
             --axis branches=2:6:1 --axis beta0=0.26:0.34:0.02
             --set paths=16 --set epochs=200 --budget 12)

echo "== clean reference run (${WORK}/clean.jsonl) =="
"${LEAKCTL}" "${SEARCH_ARGS[@]}" --journal "${WORK}/clean.jsonl" \
  --json "${WORK}/reference.json" --quiet

echo "== interrupted run (${WORK}/hostile.jsonl): 3-candidate budget, then a torn tail =="
"${LEAKCTL}" search semiactive-sweep:beta_max:max \
  --axis branches=2:6:1 --axis beta0=0.26:0.34:0.02 \
  --set paths=16 --set epochs=200 --budget 3 \
  --journal "${WORK}/hostile.jsonl" --quiet
# Simulate a crash mid-append: a half-written record with no newline.
printf '12345678 {"half' >> "${WORK}/hostile.jsonl"

echo "== resume to completion =="
"${LEAKCTL}" "${SEARCH_ARGS[@]}" --journal "${WORK}/hostile.jsonl" \
  --json "${WORK}/resumed.json" --quiet

if ! cmp "${WORK}/clean.jsonl" "${WORK}/hostile.jsonl"; then
  echo "FAIL: resumed journal differs from the clean run's" >&2
  exit 1
fi
echo "journals are byte-identical (clean vs interrupted+resumed)"

python3 - "${WORK}/reference.json" "${WORK}/resumed.json" <<'PY'
import json, sys
ref, res = (json.load(open(p)) for p in sys.argv[1:3])
for doc in (ref, res):
    assert doc["best"]["value"] is not None, "search produced no best value"
assert ref["best"] == res["best"], "resumed search picked a different optimum"
assert ref["baseline"] == res["baseline"], "baseline drifted across resume"
print(f'best {ref["best"]["value"]} == resumed best (baseline {ref["baseline"]["value"]})')
PY

echo "== a completed search re-runs zero fresh evaluations =="
"${LEAKCTL}" "${SEARCH_ARGS[@]}" --journal "${WORK}/hostile.jsonl" \
  --json "${WORK}/rerun.json" --quiet
python3 - "${WORK}/rerun.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
fresh = doc["evaluations"] - doc["cache_hits"]
assert fresh == 0, f"re-run of a complete search evaluated {fresh} candidates"
print(f'{doc["cache_hits"]} candidates replayed from the journal, 0 fresh')
PY

echo "search smoke: OK"
