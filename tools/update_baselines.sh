#!/usr/bin/env bash
# Regenerate the per-scenario ScenarioResult JSON baselines under
# bench/baselines/.  Each baseline is a full `leakctl run --json`
# report with pinned parameters (small path counts so the CI diff job
# stays fast, fixed seeds, threads=0 — results are thread-invariant);
# tools/check_baselines.py replays each one through
# `leakctl run <scenario> --params <baseline>` and diffs the metrics
# exactly, catching both silent numeric drift and any bit-identity
# break in the batched Monte Carlo kernel.
#
# Usage: tools/update_baselines.sh [-b BUILD_DIR]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${REPO_ROOT}/build"
while getopts "b:h" opt; do
  case "${opt}" in
    b) BUILD_DIR="${OPTARG}" ;;
    h) echo "usage: $0 [-b BUILD_DIR]"; exit 0 ;;
    *) exit 2 ;;
  esac
done

LEAKCTL="${BUILD_DIR}/examples/leakctl"
if [[ ! -x "${LEAKCTL}" ]]; then
  echo "error: ${LEAKCTL} not found - build first:" >&2
  echo "  cmake -B \"${BUILD_DIR}\" -S \"${REPO_ROOT}\" && cmake --build \"${BUILD_DIR}\" --target leakctl -j" >&2
  exit 1
fi

OUT_DIR="${REPO_ROOT}/bench/baselines"
mkdir -p "${OUT_DIR}"

# scenario | pinned overrides (kept small: the whole set replays in
# seconds on one CI core).
run_baseline() {
  local name="$1"; shift
  echo ">> ${name}"
  "${LEAKCTL}" run "${name}" "$@" --quiet --json "${OUT_DIR}/${name}.json"
}

run_baseline bouncing-mc         --paths 64 --set epochs=1000 --set snapshots=500,1000
run_baseline attack-lifetime     --paths 64 --set honest_validators=50 --set max_epochs=2000
run_baseline population-ensemble --paths 16 --set honest_validators=50 --set epochs=1000
run_baseline partition-trials    --paths 8 --set n_validators=200 --set max_epochs=2000
run_baseline duty-cycle
run_baseline recovery
run_baseline slot-protocol       --paths 2 --set n_honest=16 --set epochs=6
run_baseline table1
run_baseline balancing-attack    --paths 2 --set n_honest=16 --set n_byzantine=4 --set epochs=8
run_baseline semiactive-sweep    --paths 64 --set epochs=1000 --set branches=3
run_baseline multi-partition-recovery \
  --paths 4 --set n_validators=200 --set branches=3 \
  --set heal_epoch=1200 --set heal_stagger=300 --set max_epochs=4000
run_baseline cascading-partitions \
  --paths 4 --set n_validators=120 --set branches=3 \
  --set open_stagger=300 --set heal_epoch=2500 --set heal_stagger=500 \
  --set max_epochs=6000
run_baseline flaky-network       --paths 2 --set n_honest=16 --set epochs=8

echo "wrote $(ls "${OUT_DIR}"/*.json | wc -l) baselines to ${OUT_DIR}"
