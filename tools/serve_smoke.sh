#!/usr/bin/env bash
# End-to-end smoke for the `leakctl serve` job family (CI runs this in
# the scenario-matrix job; it is also the quickest local check that
# the durable-sweep contract holds on this machine).
#
# The contract it proves, with real subprocesses and a real store:
#
#   1. An interrupted run (here: --max-cells budget exhaustion, plus a
#      deliberately torn record tail) resumes to a merged result that
#      is BYTE-IDENTICAL (canonical form) to an uninterrupted run of
#      the same job in a fresh store.
#   2. Resuming an already-complete job executes zero cells.
#
# Usage: tools/serve_smoke.sh [-b BUILD_DIR]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${REPO_ROOT}/build"

while [[ $# -gt 0 ]]; do
  case "$1" in
    -b) BUILD_DIR="$2"; shift 2 ;;
    *) echo "usage: $0 [-b BUILD_DIR]" >&2; exit 2 ;;
  esac
done

LEAKCTL="${BUILD_DIR}/examples/leakctl"
if [[ ! -x "${LEAKCTL}" ]]; then
  echo "error: ${LEAKCTL} not found - build it first:" >&2
  echo "  cmake -B \"${BUILD_DIR}\" -S \"${REPO_ROOT}\" && cmake --build \"${BUILD_DIR}\" --target leakctl -j" >&2
  exit 1
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/leak_serve_smoke.XXXXXX")"
trap 'rm -rf "${WORK}"' EXIT

JOB_ARGS=(bouncing-mc --set paths=200 --set epochs=800
          --sweep beta0=0.3,0.33,0.35 --sweep p0=0.4,0.5 --workers 2)

echo "== clean reference run (${WORK}/clean) =="
"${LEAKCTL}" submit "${JOB_ARGS[@]}" --jobs-dir "${WORK}/clean"
JOB_ID="$("${LEAKCTL}" status --jobs-dir "${WORK}/clean" --json \
  | python3 -c 'import json,sys; print(json.load(sys.stdin)[0]["id"])')"
"${LEAKCTL}" resume "${JOB_ID}" --jobs-dir "${WORK}/clean"
"${LEAKCTL}" results "${JOB_ID}" --jobs-dir "${WORK}/clean" \
  --canonical --json "${WORK}/reference.json"

echo "== interrupted run (${WORK}/hostile): 2-cell budget, then a torn tail =="
"${LEAKCTL}" submit "${JOB_ARGS[@]}" --jobs-dir "${WORK}/hostile"
"${LEAKCTL}" resume "${JOB_ID}" --jobs-dir "${WORK}/hostile" --max-cells 2
if "${LEAKCTL}" results "${JOB_ID}" --jobs-dir "${WORK}/hostile" \
     --json - >/dev/null 2>&1; then
  echo "FAIL: interrupted job must not have a merged result yet" >&2
  exit 1
fi
# Simulate a crash mid-append: a half-written record with no newline.
printf '12345678 {"half' >> "${WORK}/hostile/${JOB_ID}/results.jsonl"

echo "== resume to completion =="
"${LEAKCTL}" resume "${JOB_ID}" --jobs-dir "${WORK}/hostile"
"${LEAKCTL}" results "${JOB_ID}" --jobs-dir "${WORK}/hostile" \
  --canonical --json "${WORK}/resumed.json"

if ! cmp "${WORK}/reference.json" "${WORK}/resumed.json"; then
  echo "FAIL: resumed merged result differs from the clean run" >&2
  exit 1
fi
echo "merged results are bit-identical (clean vs interrupted+resumed)"

echo "== a completed job re-runs zero cells =="
RERUN="$("${LEAKCTL}" resume "${JOB_ID}" --jobs-dir "${WORK}/hostile")"
echo "${RERUN}"
if [[ "${RERUN}" != *" 0 executed"* ]]; then
  echo "FAIL: resume of a complete job executed cells: ${RERUN}" >&2
  exit 1
fi

"${LEAKCTL}" status --jobs-dir "${WORK}/hostile"
echo "serve smoke: OK"
