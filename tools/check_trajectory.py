#!/usr/bin/env python3
"""Cross-PR benchmark trajectory: append-only, CRC-framed, checkable.

`bench/run_benchmarks.sh` produces BENCH_results.json -- a one-shot
snapshot.  This tool turns those snapshots into a trajectory: each
`append` adds one framed record to `bench/trajectory.jsonl`, and
`check` compares a fresh snapshot against the newest committed record,
failing when any benchmark's cpu time regressed beyond --max-regress.

The store uses the exact line framing of the serve results store
(src/serve/store.hpp): `<8-hex crc32> <compact JSON>\\n`, crc32 over
the JSON bytes with the zlib polynomial -- so Python's zlib.crc32
validates records written by the C++ side and vice versa, and a torn
tail (crash mid-append) invalidates only the last line.

Usage:
  tools/check_trajectory.py append RESULTS_JSON [--label TEXT]
  tools/check_trajectory.py check  RESULTS_JSON [--max-regress 1.5]
                                   [--only REGEX] [--binary NAME]
  tools/check_trajectory.py show

`check --only REGEX` restricts the comparison to the benchmark keys
matching REGEX (e.g. the four driver throughput benchmarks), so a
targeted CI gate is not failed by unrelated noisy microbenchmarks.
Keys are `binary::benchmark_name`; a raw --benchmark_out JSON from a
single binary carries no "binary" field, so pass --binary NAME to
supply it (run_benchmarks.sh injects the field when merging).

Common flags: [--store bench/trajectory.jsonl]
"""

import argparse
import json
import pathlib
import re
import sys
import zlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_STORE = REPO_ROOT / "bench" / "trajectory.jsonl"

# Multipliers to nanoseconds for google-benchmark time units.
TIME_UNITS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def frame(payload):
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    crc = zlib.crc32(body.encode()) & 0xFFFFFFFF
    return f"{crc:08x} {body}\n"


def unframe(line):
    """Return the decoded payload, or None for an invalid/torn line."""
    if len(line) < 10 or line[8] != " ":
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    body = line[9:].rstrip("\n")
    if zlib.crc32(body.encode()) & 0xFFFFFFFF != crc:
        return None
    try:
        return json.loads(body)
    except json.JSONDecodeError:
        return None


def scan(store):
    """All valid records up to the first invalid line (torn tail)."""
    if not store.exists():
        return []
    records = []
    for i, line in enumerate(store.read_text().splitlines(keepends=True)):
        payload = unframe(line)
        if payload is None or not line.endswith("\n"):
            print(
                f"note: {store}: ignoring torn/invalid tail at line {i + 1}",
                file=sys.stderr,
            )
            break
        records.append(payload)
    return records


def snapshot(results_path, label, binary=None):
    """Distill BENCH_results.json into one trajectory record."""
    data = json.loads(pathlib.Path(results_path).read_text())
    benches = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = TIME_UNITS.get(b.get("time_unit", "ns"))
        if unit is None or "cpu_time" not in b:
            continue
        key = f"{b.get('binary', binary or '?')}::{b['name']}"
        benches[key] = round(b["cpu_time"] * unit, 3)
    if not benches:
        sys.exit(f"error: {results_path} contains no benchmark timings")
    context = data.get("context", {})
    return {
        "label": label,
        "date": context.get("date", ""),
        "host": context.get("host_name", ""),
        "cpu_time_ns": benches,
    }


def cmd_append(args):
    record = snapshot(args.results, args.label)
    with open(args.store, "a") as fh:
        fh.write(frame(record))
    print(
        f"appended to {args.store}: {len(record['cpu_time_ns'])} benchmarks"
        f" (record {len(scan(args.store))})"
    )


def cmd_check(args):
    records = scan(args.store)
    if not records:
        sys.exit(
            f"error: {args.store} has no valid records - seed it with "
            "`tools/check_trajectory.py append BENCH_results.json`"
        )
    base = records[-1]["cpu_time_ns"]
    fresh = snapshot(args.results, "check", args.binary)["cpu_time_ns"]
    shared = sorted(set(base) & set(fresh))
    if args.only:
        pattern = re.compile(args.only)
        shared = [k for k in shared if pattern.search(k)]
    if not shared:
        sys.exit("error: no benchmarks in common with the last record"
                 + (f" matching --only {args.only!r}" if args.only else ""))
    regressions = []
    for key in shared:
        if base[key] > 0 and fresh[key] > base[key] * args.max_regress:
            regressions.append((key, base[key], fresh[key]))
    print(
        f"{len(shared)} benchmarks compared against record"
        f" {len(records)} ({records[-1].get('label') or 'unlabelled'})"
    )
    if regressions:
        for key, old, new in regressions:
            print(
                f"  REGRESSED {key}: {old:.0f}ns -> {new:.0f}ns"
                f" ({new / old:.2f}x, limit {args.max_regress:.2f}x)",
                file=sys.stderr,
            )
        sys.exit(f"error: {len(regressions)} benchmark(s) regressed")
    print(f"no regression beyond {args.max_regress:.2f}x")


def cmd_show(args):
    for i, rec in enumerate(scan(args.store), start=1):
        print(
            f"{i:3d}  {rec.get('date', ''):25s} "
            f"{rec.get('label') or 'unlabelled':20s} "
            f"{len(rec.get('cpu_time_ns', {}))} benchmarks"
        )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--store", type=pathlib.Path, default=DEFAULT_STORE)
    sub = ap.add_subparsers(dest="command", required=True)
    p = sub.add_parser("append", help="record a BENCH_results.json snapshot")
    p.add_argument("results")
    p.add_argument("--label", default="")
    p.set_defaults(func=cmd_append)
    p = sub.add_parser("check", help="compare a snapshot to the last record")
    p.add_argument("results")
    p.add_argument(
        "--max-regress", type=float, default=1.5,
        help="fail when cpu time exceeds last record by this factor",
    )
    p.add_argument(
        "--only", default=None,
        help="restrict the comparison to keys matching this regex",
    )
    p.add_argument(
        "--binary", default=None,
        help="binary name for raw single-binary reports (keys are "
             "binary::benchmark; merged reports carry the field already)",
    )
    p.set_defaults(func=cmd_check)
    p = sub.add_parser("show", help="list the recorded trajectory")
    p.set_defaults(func=cmd_show)
    args = ap.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()
