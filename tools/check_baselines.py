#!/usr/bin/env python3
"""Diff `leakctl run` output against the committed scenario baselines.

For every baseline under bench/baselines/ (written by
tools/update_baselines.sh), replay the archived experiment through

    leakctl run <scenario> --params <baseline.json>

and compare the resulting `metrics` and `stats` sections against the
baseline with EXACT equality.  The simulators are deterministic given
(seed, params) and bit-identical for every threads/block combination,
so any difference is either silent numeric drift or a bit-identity
break in the batched Monte Carlo kernel — both of which this gate is
meant to catch.  Metadata that legitimately varies per run (wall_ms,
git describe, resolved thread count) is not compared.

Caveat: exactness holds for one platform class.  Metrics that flow
through libm (std::exp/std::log in the analytic closed forms) inherit
the C library's last-bit rounding, and TUs outside the batched kernel
compile with the toolchain's default -ffp-contract, so baselines
generated on x86-64/glibc (the dev container and the CI runners) may
legitimately differ in the last ulp on another libc or on hardware
where the compiler contracts a*b+c.  If this gate ever fails with
last-ulp-sized diffs after a runner-image change, regenerate with
tools/update_baselines.sh rather than hunting a phantom kernel bug.

    check_baselines.py LEAKCTL [BASELINES_DIR]
"""

import json
import pathlib
import subprocess
import sys
import tempfile


def load(path):
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def diff_section(name, want, got, failures):
    if want == got:
        return
    keys = sorted(set(want) | set(got))
    for key in keys:
        a, b = want.get(key), got.get(key)
        if a != b:
            failures.append(f"  {name}.{key}: baseline {a!r} != run {b!r}")


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    leakctl = sys.argv[1]
    baseline_dir = pathlib.Path(
        sys.argv[2] if len(sys.argv) > 2
        else pathlib.Path(__file__).resolve().parent.parent
        / "bench" / "baselines")
    baselines = sorted(baseline_dir.glob("*.json"))
    if not baselines:
        print(f"error: no baselines in {baseline_dir}", file=sys.stderr)
        return 2

    bad = 0
    for path in baselines:
        want = load(path)
        scenario = want["scenario"]
        with tempfile.NamedTemporaryFile(suffix=".json") as out:
            subprocess.run(
                [leakctl, "run", scenario, "--params", str(path),
                 "--quiet", "--json", out.name],
                check=True)
            got = load(out.name)

        failures = []
        diff_section("metrics", want.get("metrics", {}),
                     got.get("metrics", {}), failures)
        diff_section("stats", want.get("stats", {}),
                     got.get("stats", {}), failures)
        if want.get("params") != got.get("params"):
            failures.append("  params: replay did not round-trip")
        if failures:
            bad += 1
            print(f"FAIL {scenario} ({path.name}):")
            print("\n".join(failures))
        else:
            n = len(want.get("metrics", {}))
            print(f"ok   {scenario}: {n} metrics exact")

    if bad:
        print(f"{bad}/{len(baselines)} baselines drifted "
              "(tools/update_baselines.sh regenerates them if the change "
              "is intentional)", file=sys.stderr)
        return 1
    print(f"all {len(baselines)} baselines match exactly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
