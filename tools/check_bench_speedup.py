#!/usr/bin/env python3
"""Gate a Google Benchmark JSON report on a speedup ratio.

Used by the CI bench-smoke job: after running
bench_fig9_stake_distribution with the scalar reference and the
batched block-size sweep, fail the job if the batched Monte Carlo
kernel is slower than the scalar baseline on the runner.

    check_bench_speedup.py REPORT.json \
        --baseline BM_MonteCarloScalarRef \
        --candidate 'BM_MonteCarloBlockSize/64' \
        [--min-ratio 1.1]

The ratio is candidate items_per_second / baseline items_per_second
(both benchmarks process the same path-epochs, so this is the
paths/sec speedup).  Every benchmark whose name matches --candidate as
a prefix is reported; the gate applies to the best one, so transient
noise on one block size cannot fail a run that has a faster cell.
"""

import argparse
import json
import sys


def items_per_second(bench):
    ips = bench.get("items_per_second")
    if ips is None:
        raise SystemExit(
            f"benchmark {bench.get('name')} has no items_per_second "
            "(missing SetItemsProcessed?)")
    return float(ips)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="--benchmark_out JSON file")
    parser.add_argument("--baseline", required=True,
                        help="exact benchmark name of the baseline")
    parser.add_argument("--candidate", required=True,
                        help="benchmark name (prefix) of the candidate(s)")
    parser.add_argument("--min-ratio", type=float, default=1.1,
                        help="minimum candidate/baseline items/sec ratio "
                             "(default 1.1)")
    args = parser.parse_args()

    with open(args.report, encoding="utf-8") as fh:
        benches = json.load(fh).get("benchmarks", [])

    baseline = [b for b in benches if b.get("name") == args.baseline]
    if not baseline:
        raise SystemExit(f"baseline {args.baseline!r} not in {args.report}")
    base_ips = items_per_second(baseline[0])

    candidates = [b for b in benches
                  if b.get("name", "").startswith(args.candidate)]
    if not candidates:
        raise SystemExit(f"candidate {args.candidate!r} not in {args.report}")

    best_ratio = 0.0
    print(f"baseline  {args.baseline}: {base_ips:.3e} items/sec")
    for bench in candidates:
        ratio = items_per_second(bench) / base_ips
        best_ratio = max(best_ratio, ratio)
        print(f"candidate {bench['name']}: "
              f"{items_per_second(bench):.3e} items/sec ({ratio:.2f}x)")

    if best_ratio < args.min_ratio:
        print(f"FAIL: best speedup {best_ratio:.2f}x < required "
              f"{args.min_ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"OK: best speedup {best_ratio:.2f}x >= {args.min_ratio:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
