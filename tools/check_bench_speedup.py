#!/usr/bin/env python3
"""Gate a Google Benchmark JSON report on speedup ratios.

Two modes, both used by CI:

Pair mode (the original interface) gates one baseline/candidate pair —
the bench-smoke job runs it on bench_fig9_stake_distribution:

    check_bench_speedup.py REPORT.json \
        --baseline BM_MonteCarloScalarRef \
        --candidate 'BM_MonteCarloBlockSize/64' \
        [--min-ratio 1.1]

Driver mode gates the whole per-driver table emitted by
bench_kernel_speedup: every Monte Carlo driver's batched kernel must
beat its scalar oracle by that driver's threshold, all on the same
runner in the same report:

    check_bench_speedup.py REPORT.json --drivers [--min-ratio 1.1]

The ratio is candidate items_per_second / baseline items_per_second
(each pair processes identical items, so this is the throughput
speedup directly).  In pair mode every benchmark whose name matches
--candidate as a prefix is reported and the gate applies to the best
one, so transient noise on one block size cannot fail a run that has a
faster cell.  In driver mode each pair is exact-name matched and every
driver must pass; --min-ratio raises (never lowers) the per-driver
floors.
"""

import argparse
import json
import sys

# Driver gate table: driver -> (scalar oracle benchmark, batched
# benchmark, minimum items/sec ratio).  The pairs live in
# bench/bench_kernel_speedup.cpp and share their workload member for
# member.  Floors are deliberately below the locally measured speedups
# (see README.md "Performance") to absorb runner noise: the gate
# exists to catch the batched path regressing to (or below) scalar
# speed, not to pin the exact ratio.
DRIVER_GATES = {
    "bouncing": ("BM_BouncingScalarRef", "BM_BouncingBatch", 1.1),
    "attack": ("BM_AttackScalarRef", "BM_AttackBatch", 1.1),
    "population": ("BM_PopulationScalarRef", "BM_PopulationBatch", 1.1),
    "partition": ("BM_PartitionScalarRef", "BM_PartitionBatch", 1.1),
}


def items_per_second(bench):
    ips = bench.get("items_per_second")
    if ips is None:
        raise SystemExit(
            f"benchmark {bench.get('name')} has no items_per_second "
            "(missing SetItemsProcessed?)")
    return float(ips)


def find_exact(benches, name, report):
    hits = [b for b in benches if b.get("name") == name]
    if not hits:
        raise SystemExit(f"benchmark {name!r} not in {report}")
    return hits[0]


def check_pair(benches, args):
    base_ips = items_per_second(find_exact(benches, args.baseline,
                                           args.report))

    candidates = [b for b in benches
                  if b.get("name", "").startswith(args.candidate)]
    if not candidates:
        raise SystemExit(f"candidate {args.candidate!r} not in {args.report}")

    best_ratio = 0.0
    print(f"baseline  {args.baseline}: {base_ips:.3e} items/sec")
    for bench in candidates:
        ratio = items_per_second(bench) / base_ips
        best_ratio = max(best_ratio, ratio)
        print(f"candidate {bench['name']}: "
              f"{items_per_second(bench):.3e} items/sec ({ratio:.2f}x)")

    if best_ratio < args.min_ratio:
        print(f"FAIL: best speedup {best_ratio:.2f}x < required "
              f"{args.min_ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"OK: best speedup {best_ratio:.2f}x >= {args.min_ratio:.2f}x")
    return 0


def check_drivers(benches, args):
    failures = []
    print(f"{'driver':<12} {'scalar items/s':>14} {'batched items/s':>15} "
          f"{'ratio':>7} {'floor':>7}")
    for driver, (scalar, batched, floor) in DRIVER_GATES.items():
        floor = max(floor, args.min_ratio)
        scalar_ips = items_per_second(find_exact(benches, scalar,
                                                 args.report))
        batched_ips = items_per_second(find_exact(benches, batched,
                                                  args.report))
        ratio = batched_ips / scalar_ips
        verdict = "ok" if ratio >= floor else "FAIL"
        print(f"{driver:<12} {scalar_ips:>14.3e} {batched_ips:>15.3e} "
              f"{ratio:>6.2f}x {floor:>6.2f}x  {verdict}")
        if ratio < floor:
            failures.append(f"{driver}: {ratio:.2f}x < {floor:.2f}x")

    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    print(f"OK: all {len(DRIVER_GATES)} drivers meet their speedup floors")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="--benchmark_out JSON file")
    parser.add_argument("--drivers", action="store_true",
                        help="gate every per-driver pair in DRIVER_GATES "
                             "instead of a single baseline/candidate pair")
    parser.add_argument("--baseline",
                        help="exact benchmark name of the baseline "
                             "(pair mode)")
    parser.add_argument("--candidate",
                        help="benchmark name (prefix) of the candidate(s) "
                             "(pair mode)")
    parser.add_argument("--min-ratio", type=float, default=1.1,
                        help="minimum candidate/baseline items/sec ratio; "
                             "in driver mode, raises any lower per-driver "
                             "floor (default 1.1)")
    args = parser.parse_args()

    if args.drivers == bool(args.baseline or args.candidate):
        parser.error("use either --drivers or --baseline/--candidate")
    if not args.drivers and not (args.baseline and args.candidate):
        parser.error("pair mode needs both --baseline and --candidate")

    with open(args.report, encoding="utf-8") as fh:
        benches = json.load(fh).get("benchmarks", [])

    if args.drivers:
        return check_drivers(benches, args)
    return check_pair(benches, args)


if __name__ == "__main__":
    sys.exit(main())
