#!/usr/bin/env bash
# One-command local entry point for the static-analysis gates CI runs:
#
#   tools/lint.sh              # leaklint + clang-tidy (if installed)
#   tools/lint.sh --leaklint   # just the determinism linter
#   tools/lint.sh --tidy       # just clang-tidy over src/
#
# leaklint is built into build-lint/ (a tiny tools-only tree, so this
# works without configuring the full test suite).  clang-tidy needs a
# compile database; the script configures one with
# CMAKE_EXPORT_COMPILE_COMMANDS and skips the step with a notice when
# clang-tidy is not installed, matching the CI `lint` job.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

run_leaklint=1
run_tidy=1
case "${1:-}" in
  --leaklint) run_tidy=0 ;;
  --tidy) run_leaklint=0 ;;
  "") ;;
  *)
    echo "usage: tools/lint.sh [--leaklint|--tidy]" >&2
    exit 2
    ;;
esac

build_dir="build-lint"
cmake -B "${build_dir}" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DLEAK_BUILD_TESTS=OFF -DLEAK_BUILD_BENCH=OFF \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

if [[ "${run_leaklint}" == 1 ]]; then
  echo "== leaklint =="
  cmake --build "${build_dir}" --target leaklint -j "$(nproc)" >/dev/null
  "./${build_dir}/tools/lint/leaklint" --root "${repo_root}" \
    src tests bench examples
fi

if [[ "${run_tidy}" == 1 ]]; then
  echo "== clang-tidy =="
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed; skipping (CI runs it)" >&2
  else
    # Lint the library TUs; headers come in via HeaderFilterRegex.
    find src -name '*.cpp' -print0 \
      | xargs -0 -n 8 -P "$(nproc)" clang-tidy -p "${build_dir}" --quiet
  fi
fi
