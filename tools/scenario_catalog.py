#!/usr/bin/env python3
"""Render the README "Scenario catalog" table from `leakctl list --json`.

Usage:
    ./build/examples/leakctl list --json | python3 tools/scenario_catalog.py

Reads the scenario-spec array on stdin and writes the markdown table on
stdout.  tools/update_scenario_catalog.sh splices the output into
README.md between the scenario-catalog markers; CI regenerates it and
fails when the committed table is stale.
"""
import json
import sys


def default_to_str(param):
    value = param["default"]
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        # repr() gives the shortest round-trip form, matching the C++
        # to_chars output for the values used in the specs.
        return repr(value)
    if value == "":
        return '""'
    return str(value)


def main():
    specs = json.load(sys.stdin)
    lines = [
        "| scenario | description | parameters (defaults) |",
        "|---|---|---|",
    ]
    for spec in specs:
        params = ", ".join(
            "`{}={}`".format(p["name"], default_to_str(p))
            for p in spec["params"]
        )
        lines.append(
            "| `{}` | {} | {} |".format(
                spec["name"], spec["description"], params
            )
        )
    sys.stdout.write("\n".join(lines) + "\n")


if __name__ == "__main__":
    main()
