#!/usr/bin/env bash
# Regenerate the README "Scenario catalog" section from the leakctl
# registry (the committed table must always match the code; CI checks
# it with --check).
#
# Usage: tools/update_scenario_catalog.sh [--check] [-b BUILD_DIR]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${REPO_ROOT}/build"
CHECK=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --check) CHECK=1; shift ;;
    -b) BUILD_DIR="$2"; shift 2 ;;
    *) echo "usage: $0 [--check] [-b BUILD_DIR]" >&2; exit 2 ;;
  esac
done

LEAKCTL="${BUILD_DIR}/examples/leakctl"
if [[ ! -x "${LEAKCTL}" ]]; then
  echo "error: ${LEAKCTL} not found - build it first:" >&2
  echo "  cmake -B \"${BUILD_DIR}\" -S \"${REPO_ROOT}\" && cmake --build \"${BUILD_DIR}\" --target leakctl -j" >&2
  exit 1
fi

README="${REPO_ROOT}/README.md"
BEGIN='<!-- scenario-catalog:begin -->'
END='<!-- scenario-catalog:end -->'

TABLE="$("${LEAKCTL}" list --json | python3 "${REPO_ROOT}/tools/scenario_catalog.py")"

python3 - "${README}" "${BEGIN}" "${END}" "${CHECK}" <<'EOF' "${TABLE}"
import difflib
import sys

readme_path, begin, end, check = sys.argv[1:5]
table = sys.argv[5]

text = open(readme_path).read()
try:
    head, rest = text.split(begin, 1)
    _, tail = rest.split(end, 1)
except ValueError:
    sys.exit(f"error: {readme_path} lacks the scenario-catalog markers")

updated = head + begin + "\n" + table + end + tail
if check == "1":
    if updated != text:
        diff = difflib.unified_diff(
            text.splitlines(keepends=True),
            updated.splitlines(keepends=True),
            fromfile=f"{readme_path} (committed)",
            tofile=f"{readme_path} (regenerated)",
        )
        sys.stderr.writelines(diff)
        sys.exit(
            "error: README scenario catalog is stale (diff above) - run "
            "tools/update_scenario_catalog.sh and commit the result"
        )
    print("scenario catalog is current")
else:
    open(readme_path, "w").write(updated)
    print(f"updated {readme_path}")
EOF
